#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/config.hpp"
#include "common/error.hpp"
#include "common/math.hpp"
#include "common/random.hpp"
#include "common/table.hpp"
#include "common/types.hpp"
#include "common/units.hpp"
#include "common/vec3.hpp"

namespace octo {
namespace {

TEST(Vec3, ArithmeticOps) {
  const rvec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(a + b, (rvec3{5, 7, 9}));
  EXPECT_EQ(b - a, (rvec3{3, 3, 3}));
  EXPECT_EQ(2.0 * a, (rvec3{2, 4, 6}));
  EXPECT_EQ(a * 2.0, (rvec3{2, 4, 6}));
  EXPECT_EQ(-a, (rvec3{-1, -2, -3}));
  EXPECT_EQ((a / 2.0), (rvec3{0.5, 1, 1.5}));
}

TEST(Vec3, DotCrossNorm) {
  const rvec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 32);
  EXPECT_EQ(cross(a, b), (rvec3{-3, 6, -3}));
  EXPECT_DOUBLE_EQ(norm2(a), 14);
  EXPECT_DOUBLE_EQ(norm(rvec3{3, 4, 0}), 5);
  // cross product is perpendicular to both factors
  const rvec3 c = cross(a, b);
  EXPECT_DOUBLE_EQ(dot(c, a), 0);
  EXPECT_DOUBLE_EQ(dot(c, b), 0);
}

TEST(Vec3, IndexAccess) {
  rvec3 a{7, 8, 9};
  EXPECT_DOUBLE_EQ(a[0], 7);
  EXPECT_DOUBLE_EQ(a[1], 8);
  EXPECT_DOUBLE_EQ(a[2], 9);
  a[1] = 42;
  EXPECT_DOUBLE_EQ(a.y, 42);
}

TEST(Math, IPow) {
  EXPECT_EQ(ipow(2, 10), 1024);
  EXPECT_EQ(ipow(3, 0), 1);
  EXPECT_EQ(ipow(index_t(8), 5), index_t(32768));
}

TEST(Math, DivCeilRoundUp) {
  EXPECT_EQ(div_ceil(10, 3), 4);
  EXPECT_EQ(div_ceil(9, 3), 3);
  EXPECT_EQ(round_up(10, 4), 12);
  EXPECT_EQ(round_up(8, 4), 8);
}

TEST(Math, ApproxEq) {
  EXPECT_TRUE(approx_eq(1.0, 1.0 + 1e-12, 1e-10));
  EXPECT_FALSE(approx_eq(1.0, 1.1, 1e-3));
  EXPECT_TRUE(approx_eq(1e10, 1e10 * (1 + 1e-12), 1e-10));
}

TEST(Random, Deterministic) {
  xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Random, DifferentSeedsDiffer) {
  xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Random, UniformRange) {
  xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  double sum = 0;
  for (int i = 0; i < 10000; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Random, Below) {
  xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Config, FromArgs) {
  const char* argv[] = {"prog", "level=4", "cfl=0.3", "run", "simd=true"};
  const auto c = config::from_args(5, argv);
  EXPECT_EQ(c.get("level", 0), 4);
  EXPECT_DOUBLE_EQ(c.get("cfl", 1.0), 0.3);
  EXPECT_TRUE(c.get("simd", false));
  ASSERT_EQ(c.positional().size(), 1u);
  EXPECT_EQ(c.positional()[0], "run");
}

TEST(Config, Defaults) {
  const config c;
  EXPECT_EQ(c.get("missing", 42), 42);
  EXPECT_EQ(c.get("missing", std::string("x")), "x");
  EXPECT_FALSE(c.has("missing"));
}

TEST(Config, MalformedValueThrows) {
  config c;
  c.set("n", "abc");
  EXPECT_THROW(c.get("n", 0), error);
  c.set("b", "maybe");
  EXPECT_THROW(c.get("b", false), error);
}

TEST(Config, FromFile) {
  const std::string path = testing::TempDir() + "/octo_config_test.cfg";
  {
    std::ofstream os(path);
    os << "# comment\nlevel = 3\n  name= rotating_star # trailing\n\n";
  }
  const auto c = config::from_file(path);
  EXPECT_EQ(c.get("level", 0), 3);
  EXPECT_EQ(c.get("name", std::string()), "rotating_star");
}

TEST(Table, AlignsAndCounts) {
  table t({"a", "longheader"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  EXPECT_EQ(t.rows(), 2u);
  std::ostringstream os;
  t.print(os);
  const auto s = os.str();
  EXPECT_NE(s.find("longheader"), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
}

TEST(Table, RowSizeMismatchThrows) {
  table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), error);
}

TEST(Error, CheckMacros) {
  EXPECT_NO_THROW(OCTO_CHECK(1 + 1 == 2));
  EXPECT_THROW(OCTO_CHECK(false), error);
  try {
    OCTO_CHECK_MSG(false, "context " << 42);
    FAIL();
  } catch (const error& e) {
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
  }
}

TEST(Units, TimeScaleSolar) {
  // For M = M_sun, L = R_sun: t* = sqrt(R^3/(G M)) ~ 1594 s.
  units::unit_system u;
  EXPECT_NEAR(u.time_cgs(), 1594.0, 10.0);
  EXPECT_GT(u.density_cgs(), 0);
  EXPECT_GT(u.velocity_cgs(), 0);
}

TEST(Types, Constants) {
  EXPECT_EQ(SUBGRID_N, 8);
  EXPECT_EQ(NCHILD, 8);
  EXPECT_EQ(NNEIGHBOR, 26);
  EXPECT_GE(GHOST_WIDTH, 2);  // PLM stencil requirement
}

}  // namespace
}  // namespace octo
