#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apex/apex.hpp"

namespace octo::apex {
namespace {

TEST(Apex, TimerRegistrationIdempotent) {
  auto& r = registry::instance();
  const auto a = r.timer("apex_test.idempotent");
  const auto b = r.timer("apex_test.idempotent");
  EXPECT_EQ(a, b);
  const auto c = r.timer("apex_test.other");
  EXPECT_NE(a, c);
}

TEST(Apex, ScopedTimerAccumulates) {
  auto& r = registry::instance();
  const auto id = r.timer("apex_test.scoped");
  const auto before = [&] {
    for (const auto& t : r.timers())
      if (t.name == "apex_test.scoped") return t.calls;
    return std::uint64_t{0};
  }();
  {
    scoped_timer t(id);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (const auto& t : r.timers()) {
    if (t.name != "apex_test.scoped") continue;
    EXPECT_EQ(t.calls, before + 1);
    EXPECT_GT(t.max_seconds, 0.001);
    EXPECT_LE(t.min_seconds, t.max_seconds);
  }
}

TEST(Apex, CounterAdds) {
  auto& r = registry::instance();
  const auto id = r.counter("apex_test.counter");
  r.add(id, 5);
  r.add(id);
  std::uint64_t got = 0;
  for (const auto& c : r.counters())
    if (c.name == "apex_test.counter") got = c.value;
  EXPECT_GE(got, 6u);
}

TEST(Apex, DisabledIsNoOp) {
  auto& r = registry::instance();
  const auto id = r.counter("apex_test.disabled");
  r.set_enabled(false);
  r.add(id, 100);
  r.set_enabled(true);
  for (const auto& c : r.counters())
    if (c.name == "apex_test.disabled") EXPECT_EQ(c.value, 0u);
}

TEST(Apex, TimedHelperReturnsValue) {
  auto& r = registry::instance();
  const auto id = r.timer("apex_test.timed");
  EXPECT_EQ(timed(id, [] { return 42; }), 42);
}

TEST(Apex, ReportRenders) {
  auto& r = registry::instance();
  const auto id = r.timer("apex_test.report");
  { scoped_timer t(id); }
  std::ostringstream os;
  r.report(os);
  EXPECT_NE(os.str().find("apex_test.report"), std::string::npos);
}

TEST(Apex, ConcurrentSamplesAllCounted) {
  auto& r = registry::instance();
  const auto id = r.timer("apex_test.concurrent");
  constexpr int per_thread = 2000;
  auto work = [&] {
    for (int i = 0; i < per_thread; ++i) r.sample(id, 1e-6);
  };
  std::thread t1(work), t2(work);
  work();
  t1.join();
  t2.join();
  for (const auto& t : r.timers())
    if (t.name == "apex_test.concurrent")
      EXPECT_EQ(t.calls, 3u * per_thread);
}

// The seed kept slots in a std::vector, so a sample() concurrent with a
// registration could read through a reallocated buffer.  Hammer
// registration + sampling + snapshotting together; under TSan this is the
// regression test for the chunked-slot storage.
TEST(Apex, ConcurrentRegistrationSamplingSnapshot) {
  auto& r = registry::instance();
  constexpr int n_register = 300;  // crosses several 64-slot chunks
  constexpr int n_samples = 5000;
  std::atomic<bool> stop{false};

  std::thread registrar([&] {
    for (int i = 0; i < n_register; ++i) {
      const auto t = r.timer("apex_test.stress.t" + std::to_string(i));
      r.sample(t, 1e-7);
      const auto c = r.counter("apex_test.stress.c" + std::to_string(i));
      r.add(c, 1);
    }
    stop.store(true);
  });

  const auto hot_timer = r.timer("apex_test.stress.hot");
  const auto hot_counter = r.counter("apex_test.stress.hot");
  auto sampler = [&] {
    for (int i = 0; i < n_samples; ++i) {
      r.sample(hot_timer, 1e-6);
      r.add(hot_counter, 1);
    }
  };
  std::thread s1(sampler), s2(sampler);

  std::uint64_t snapshots = 0;
  do {  // at least one snapshot even if the registrar already finished
    (void)r.timers();
    (void)r.counters();
    ++snapshots;
  } while (!stop.load());

  registrar.join();
  s1.join();
  s2.join();
  EXPECT_GE(snapshots, 1u);

  std::uint64_t hot_calls = 0, hot_value = 0;
  int stress_timers = 0;
  for (const auto& t : r.timers()) {
    if (t.name == "apex_test.stress.hot") hot_calls = t.calls;
    if (t.name.rfind("apex_test.stress.t", 0) == 0) ++stress_timers;
  }
  for (const auto& c : r.counters())
    if (c.name == "apex_test.stress.hot") hot_value = c.value;
  EXPECT_EQ(hot_calls, 2u * n_samples);
  EXPECT_EQ(hot_value, 2u * n_samples);
  EXPECT_EQ(stress_timers, n_register);
}

// p50/p95 come from the log2 histogram: two well-separated populations
// must land in the right order of magnitude.
TEST(Apex, PercentilesSeparatePopulations) {
  auto& r = registry::instance();
  const auto id = r.timer("apex_test.percentile");
  // 90 fast samples (~1 us) and 10 slow ones (~16 ms): the nearest-rank
  // p95 (rank 95 of 100) must land in the slow population.
  for (int i = 0; i < 90; ++i) r.sample(id, 1e-6);
  for (int i = 0; i < 10; ++i) r.sample(id, 16e-3);
  for (const auto& t : r.timers()) {
    if (t.name != "apex_test.percentile") continue;
    EXPECT_GT(t.p50_seconds, 1e-7);  // log2 bucket around 1 us
    EXPECT_LT(t.p50_seconds, 1e-5);
    EXPECT_GT(t.p95_seconds, 1e-3);  // pulled up by the slow tail
    EXPECT_GE(t.p95_seconds, t.p50_seconds);
    EXPECT_LE(t.p50_seconds, t.max_seconds);
  }
}

// The report groups dotted names under a common header.
TEST(Apex, ReportGroupsHierarchically) {
  auto& r = registry::instance();
  { scoped_timer t(r.timer("apexgrp.alpha")); }
  { scoped_timer t(r.timer("apexgrp.beta")); }
  std::ostringstream os;
  r.report(os);
  const auto s = os.str();
  EXPECT_NE(s.find("[apexgrp]"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("beta"), std::string::npos);
  EXPECT_NE(s.find("p95"), std::string::npos);
}

}  // namespace
}  // namespace octo::apex
