#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "apex/apex.hpp"

namespace octo::apex {
namespace {

TEST(Apex, TimerRegistrationIdempotent) {
  auto& r = registry::instance();
  const auto a = r.timer("apex_test.idempotent");
  const auto b = r.timer("apex_test.idempotent");
  EXPECT_EQ(a, b);
  const auto c = r.timer("apex_test.other");
  EXPECT_NE(a, c);
}

TEST(Apex, ScopedTimerAccumulates) {
  auto& r = registry::instance();
  const auto id = r.timer("apex_test.scoped");
  const auto before = [&] {
    for (const auto& t : r.timers())
      if (t.name == "apex_test.scoped") return t.calls;
    return std::uint64_t{0};
  }();
  {
    scoped_timer t(id);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (const auto& t : r.timers()) {
    if (t.name != "apex_test.scoped") continue;
    EXPECT_EQ(t.calls, before + 1);
    EXPECT_GT(t.max_seconds, 0.001);
    EXPECT_LE(t.min_seconds, t.max_seconds);
  }
}

TEST(Apex, CounterAdds) {
  auto& r = registry::instance();
  const auto id = r.counter("apex_test.counter");
  r.add(id, 5);
  r.add(id);
  std::uint64_t got = 0;
  for (const auto& c : r.counters())
    if (c.name == "apex_test.counter") got = c.value;
  EXPECT_GE(got, 6u);
}

TEST(Apex, DisabledIsNoOp) {
  auto& r = registry::instance();
  const auto id = r.counter("apex_test.disabled");
  r.set_enabled(false);
  r.add(id, 100);
  r.set_enabled(true);
  for (const auto& c : r.counters())
    if (c.name == "apex_test.disabled") EXPECT_EQ(c.value, 0u);
}

TEST(Apex, TimedHelperReturnsValue) {
  auto& r = registry::instance();
  const auto id = r.timer("apex_test.timed");
  EXPECT_EQ(timed(id, [] { return 42; }), 42);
}

TEST(Apex, ReportRenders) {
  auto& r = registry::instance();
  const auto id = r.timer("apex_test.report");
  { scoped_timer t(id); }
  std::ostringstream os;
  r.report(os);
  EXPECT_NE(os.str().find("apex_test.report"), std::string::npos);
}

TEST(Apex, ConcurrentSamplesAllCounted) {
  auto& r = registry::instance();
  const auto id = r.timer("apex_test.concurrent");
  constexpr int per_thread = 2000;
  auto work = [&] {
    for (int i = 0; i < per_thread; ++i) r.sample(id, 1e-6);
  };
  std::thread t1(work), t2(work);
  work();
  t1.join();
  t2.join();
  for (const auto& t : r.timers())
    if (t.name == "apex_test.concurrent")
      EXPECT_EQ(t.calls, 3u * per_thread);
}

}  // namespace
}  // namespace octo::apex
