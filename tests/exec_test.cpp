#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "exec/parallel.hpp"
#include "exec/view.hpp"

namespace octo::exec {
namespace {

struct ExecTest : testing::Test {
  amt::runtime rt{3};
};

TEST_F(ExecTest, RangePolicyBasics) {
  range_policy p(5, 12);
  EXPECT_EQ(p.size(), 7);
  EXPECT_EQ(range_policy(9).begin, 0);
  EXPECT_THROW(range_policy(5, 3), octo::error);
}

TEST_F(ExecTest, MdRangeUnflattenRoundTrip) {
  mdrange_policy p({1, 2, 3}, {4, 7, 9});
  EXPECT_EQ(p.size(), 3 * 5 * 6);
  index_t flat = 0;
  for (index_t i = p.begin[0]; i < p.end[0]; ++i)
    for (index_t j = p.begin[1]; j < p.end[1]; ++j)
      for (index_t k = p.begin[2]; k < p.end[2]; ++k) {
        const auto ijk = p.unflatten(flat++);
        EXPECT_EQ(ijk[0], i);
        EXPECT_EQ(ijk[1], j);
        EXPECT_EQ(ijk[2], k);
      }
}

TEST_F(ExecTest, ChunkBoundsCoverRange) {
  for (const index_t n : {1, 7, 64, 1000}) {
    for (const int chunks : {1, 3, 16}) {
      index_t covered = 0;
      for (int c = 0; c < chunks; ++c)
        covered += chunk_begin(n, chunks, c + 1) - chunk_begin(n, chunks, c);
      EXPECT_EQ(covered, n);
      EXPECT_EQ(chunk_begin(n, chunks, 0), 0);
      EXPECT_EQ(chunk_begin(n, chunks, chunks), n);
    }
  }
}

TEST_F(ExecTest, SerialParallelFor) {
  std::vector<int> hit(100, 0);
  parallel_for(serial_space{}, range_policy(100),
               [&](index_t i) { hit[static_cast<std::size_t>(i)]++; });
  EXPECT_EQ(std::accumulate(hit.begin(), hit.end(), 0), 100);
}

TEST_F(ExecTest, SerialReduce) {
  const double s = parallel_reduce(
      serial_space{}, range_policy(1, 101), 0.0,
      [](index_t i, double& acc) { acc += static_cast<double>(i); },
      plus_op{});
  EXPECT_DOUBLE_EQ(s, 5050.0);
}

class ChunkedFor : public testing::TestWithParam<int> {
 protected:
  amt::runtime rt{3};
};

TEST_P(ChunkedFor, EveryIndexExactlyOnce) {
  const int chunks = GetParam();
  amt_space space(rt, {chunks});
  std::vector<std::atomic<int>> hit(517);
  for (auto& h : hit) h.store(0);
  parallel_for(space, range_policy(517),
               [&](index_t i) { hit[static_cast<std::size_t>(i)].fetch_add(1); });
  for (auto& h : hit) EXPECT_EQ(h.load(), 1);
}

TEST_P(ChunkedFor, ReduceMatchesSerial) {
  const int chunks = GetParam();
  amt_space space(rt, {chunks});
  const double s = parallel_reduce(
      space, range_policy(1234), 0.0,
      [](index_t i, double& acc) { acc += static_cast<double>(i * i); },
      plus_op{});
  double expect = 0;
  for (index_t i = 0; i < 1234; ++i) expect += static_cast<double>(i * i);
  EXPECT_DOUBLE_EQ(s, expect);
}

INSTANTIATE_TEST_SUITE_P(Chunks, ChunkedFor,
                         testing::Values(1, 2, 4, 16, 64));

TEST_F(ExecTest, AsyncForReturnsFuture) {
  amt_space space(rt, {4});
  std::vector<std::atomic<int>> hit(64);
  for (auto& h : hit) h.store(0);
  auto f = async_for(space, range_policy(64), [&](index_t i) {
    hit[static_cast<std::size_t>(i)].fetch_add(1);
  });
  f.get(rt);
  for (auto& h : hit) EXPECT_EQ(h.load(), 1);
}

TEST_F(ExecTest, AsyncReduceMinMax) {
  amt_space space(rt, {8});
  auto fmin = async_reduce(
      space, range_policy(1000), 1e300,
      [](index_t i, double& acc) {
        acc = std::min(acc, static_cast<double>((i * 37) % 1000));
      },
      min_op{});
  EXPECT_DOUBLE_EQ(fmin.get(rt), 0.0);
  auto fmax = async_reduce(
      space, range_policy(1000), -1e300,
      [](index_t i, double& acc) {
        acc = std::max(acc, static_cast<double>(i)); },
      max_op{});
  EXPECT_DOUBLE_EQ(fmax.get(rt), 999.0);
}

TEST_F(ExecTest, EmptyRange) {
  amt_space space(rt, {4});
  int hits = 0;
  parallel_for(space, range_policy(0), [&](index_t) { ++hits; });
  EXPECT_EQ(hits, 0);
}

TEST_F(ExecTest, WithChunksOverride) {
  amt_space space(rt, {1});
  EXPECT_EQ(space.params().chunks, 1);
  EXPECT_EQ(space.with_chunks(16).params().chunks, 16);
  EXPECT_EQ(space.params().chunks, 1);  // original unchanged
}

TEST_F(ExecTest, MdParallelForAmt) {
  amt_space space(rt, {4});
  std::vector<std::atomic<int>> hit(4 * 5 * 6);
  for (auto& h : hit) h.store(0);
  parallel_for(space, mdrange_policy({4, 5, 6}),
               [&](index_t i, index_t j, index_t k) {
                 hit[static_cast<std::size_t>((i * 5 + j) * 6 + k)].fetch_add(1);
               });
  for (auto& h : hit) EXPECT_EQ(h.load(), 1);
}

TEST(HostView, ShapeAndAccess) {
  host_view<double> v("test", 3, 4, 5);
  EXPECT_EQ(v.rank(), 3);
  EXPECT_EQ(v.extent(0), 3);
  EXPECT_EQ(v.extent(2), 5);
  EXPECT_EQ(v.size(), 60);
  v(2, 3, 4) = 7.5;
  EXPECT_DOUBLE_EQ(v(2, 3, 4), 7.5);
  // row-major: last index contiguous
  EXPECT_EQ(&v(0, 0, 1) - &v(0, 0, 0), 1);
  EXPECT_EQ(&v(0, 1, 0) - &v(0, 0, 0), 5);
}

TEST(HostView, Fill) {
  host_view<int> v("f", 10);
  v.fill(3);
  for (index_t i = 0; i < 10; ++i) EXPECT_EQ(v(i), 3);
}

}  // namespace
}  // namespace octo::exec
