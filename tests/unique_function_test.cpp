#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "amt/unique_function.hpp"

namespace octo::amt {
namespace {

TEST(UniqueFunction, EmptyAndBool) {
  unique_function<void()> f;
  EXPECT_FALSE(static_cast<bool>(f));
  f = [] {};
  EXPECT_TRUE(static_cast<bool>(f));
  f.reset();
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(UniqueFunction, InvokesSmallLambda) {
  int hits = 0;
  unique_function<void()> f = [&hits] { ++hits; };
  f();
  f();
  EXPECT_EQ(hits, 2);
}

TEST(UniqueFunction, ReturnsValueAndTakesArgs) {
  unique_function<int(int, int)> f = [](int a, int b) { return a * b; };
  EXPECT_EQ(f(6, 7), 42);
}

TEST(UniqueFunction, MoveOnlyCapture) {
  auto p = std::make_unique<int>(99);
  unique_function<int()> f = [p = std::move(p)] { return *p; };
  EXPECT_EQ(f(), 99);
}

TEST(UniqueFunction, LargeCaptureUsesHeap) {
  // Capture bigger than the SBO buffer still works.
  struct big {
    char data[256];
  };
  big b{};
  b.data[0] = 'x';
  b.data[255] = 'y';
  unique_function<char()> f = [b] { return static_cast<char>(b.data[0] + b.data[255] - 'y'); };
  EXPECT_EQ(f(), 'x');
}

TEST(UniqueFunction, MoveTransfersOwnership) {
  int hits = 0;
  unique_function<void()> f = [&hits] { ++hits; };
  unique_function<void()> g = std::move(f);
  EXPECT_FALSE(static_cast<bool>(f));  // NOLINT: moved-from check
  EXPECT_TRUE(static_cast<bool>(g));
  g();
  EXPECT_EQ(hits, 1);
}

TEST(UniqueFunction, MoveAssignDestroysOld) {
  auto counter = std::make_shared<int>(0);
  struct bump_on_destroy {
    std::shared_ptr<int> c;
    ~bump_on_destroy() {
      if (c) ++*c;
    }
    bump_on_destroy(std::shared_ptr<int> cc) : c(std::move(cc)) {}
    bump_on_destroy(bump_on_destroy&&) = default;
    void operator()() {}
  };
  unique_function<void()> f = bump_on_destroy(counter);
  unique_function<void()> g = [] {};
  const int before = *counter;
  f = std::move(g);  // destroys the bump_on_destroy target
  EXPECT_EQ(*counter, before + 1);
}

TEST(UniqueFunction, DestructorReleasesCapture) {
  auto tracked = std::make_shared<int>(5);
  {
    unique_function<void()> f = [tracked] { (void)tracked; };
    EXPECT_EQ(tracked.use_count(), 2);
  }
  EXPECT_EQ(tracked.use_count(), 1);
}

}  // namespace
}  // namespace octo::amt
