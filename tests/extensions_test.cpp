/// Tests for the extension features: the HLLC Riemann solver, dynamic
/// regridding, the Sedov blast scenario, slice/profile output, and the DES
/// critical-path analysis.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "app/output.hpp"
#include "app/simulation.hpp"
#include "app/vtk.hpp"
#include "des/workload.hpp"
#include "hydro/kernel.hpp"

namespace octo {
namespace {

using grid::subgrid;
constexpr int N = subgrid::N;
constexpr int G = subgrid::G;

void fill_contact(subgrid& u, const hydro::ideal_gas& gas) {
  for (int i = -G; i < N + G; ++i)
    for (int j = -G; j < N + G; ++j)
      for (int k = -G; k < N + G; ++k) {
        const real rho = i < N / 2 ? 1.0 : 2.0;
        const real eint = 1.0 / (gas.gamma - 1);
        u.at(grid::f_rho, i, j, k) = rho;
        u.at(grid::f_sx, i, j, k) = 0;
        u.at(grid::f_sy, i, j, k) = 0;
        u.at(grid::f_sz, i, j, k) = 0;
        u.at(grid::f_egas, i, j, k) = eint;
        u.at(grid::f_tau, i, j, k) = std::pow(eint, 1 / gas.gamma);
        u.at(grid::f_spc0, i, j, k) = rho;
        u.at(grid::f_spc1, i, j, k) = 0;
      }
}

TEST(Hllc, StationaryContactExactlyPreserved) {
  // HLLC resolves the contact wave: a stationary density jump at uniform
  // pressure produces exactly zero flux divergence (HLL diffuses it).
  hydro::hydro_options hllc;
  hllc.riemann = hydro::riemann_solver::hllc;
  hydro::hydro_options hll;
  hll.riemann = hydro::riemann_solver::hll;

  subgrid u(rvec3{0, 0, 0}, 0.1);
  fill_contact(u, hllc.gas);
  hydro::workspace ws;
  std::vector<real> d_hllc(static_cast<std::size_t>(hydro::dudt_size), 0);
  std::vector<real> d_hll(static_cast<std::size_t>(hydro::dudt_size), 0);
  hydro::flux_divergence(u, hllc, ws, d_hllc);
  hydro::flux_divergence(u, hll, ws, d_hll);

  real hllc_max = 0, hll_max = 0;
  for (std::size_t c = 0; c < d_hllc.size(); ++c) {
    hllc_max = std::max(hllc_max, std::abs(d_hllc[c]));
    hll_max = std::max(hll_max, std::abs(d_hll[c]));
  }
  EXPECT_LT(hllc_max, 1e-11);  // exact contact preservation
  EXPECT_GT(hll_max, 1e-3);    // HLL diffuses the contact
}

TEST(Hllc, UniformFlowZeroDivergence) {
  hydro::hydro_options opt;
  opt.riemann = hydro::riemann_solver::hllc;
  subgrid u(rvec3{0, 0, 0}, 0.1);
  const real eint = 1.0 / (opt.gas.gamma - 1);
  for (int i = -G; i < N + G; ++i)
    for (int j = -G; j < N + G; ++j)
      for (int k = -G; k < N + G; ++k) {
        u.at(grid::f_rho, i, j, k) = 1.3;
        u.at(grid::f_sx, i, j, k) = 1.3 * 0.4;
        u.at(grid::f_sy, i, j, k) = 1.3 * -0.2;
        u.at(grid::f_sz, i, j, k) = 1.3 * 0.1;
        u.at(grid::f_egas, i, j, k) =
            eint + real(0.5) * 1.3 * (0.16 + 0.04 + 0.01);
        u.at(grid::f_tau, i, j, k) = std::pow(eint, 1 / opt.gas.gamma);
        u.at(grid::f_spc0, i, j, k) = 1.3;
        u.at(grid::f_spc1, i, j, k) = 0;
      }
  hydro::workspace ws;
  std::vector<real> dudt(static_cast<std::size_t>(hydro::dudt_size), 0);
  hydro::flux_divergence(u, opt, ws, dudt);
  for (const real v : dudt) EXPECT_NEAR(v, 0.0, 1e-11);
}

TEST(Hllc, ScalarSimdAgree) {
  hydro::hydro_options o1, o2;
  o1.riemann = o2.riemann = hydro::riemann_solver::hllc;
  o1.use_simd = false;
  o2.use_simd = true;
  subgrid u(rvec3{0, 0, 0}, 0.1);
  fill_contact(u, o1.gas);
  // add some velocity structure so every HLLC branch is exercised
  for (int i = -G; i < N + G; ++i)
    for (int j = -G; j < N + G; ++j)
      for (int k = -G; k < N + G; ++k)
        u.at(grid::f_sx, i, j, k) =
            u.at(grid::f_rho, i, j, k) * real(0.3) * std::sin(i + j + k);
  hydro::workspace w1, w2;
  std::vector<real> d1(static_cast<std::size_t>(hydro::dudt_size), 0);
  std::vector<real> d2(static_cast<std::size_t>(hydro::dudt_size), 0);
  hydro::flux_divergence(u, o1, w1, d1);
  hydro::flux_divergence(u, o2, w2, d2);
  for (std::size_t c = 0; c < d1.size(); ++c)
    ASSERT_NEAR(d1[c], d2[c], 1e-11 * std::max(std::abs(d1[c]), real(1)));
}

struct ExtEnv : testing::Test {
  amt::runtime rt{3};
  amt::scoped_global_runtime guard{rt};
};

TEST_F(ExtEnv, SedovBlastExpandsSpherically) {
  auto sc = scen::sedov();
  app::sim_options opt;
  opt.max_level = 2;
  opt.self_gravity = false;
  opt.hydro.riemann = hydro::riemann_solver::hllc;
  app::simulation sim(sc, opt);
  sim.initialize();
  const auto l0 = sim.measure();
  for (int s = 0; s < 4; ++s) sim.step();
  const auto l1 = sim.measure();
  // closed-box-like early phase: energy conserved to outflow level
  EXPECT_NEAR(l1.gas_energy, l0.gas_energy, 1e-6 * l0.gas_energy);
  // shock moved outward: peak density now off-center
  const auto prof = app::extract_radial_profile(sim, grid::f_rho, 0.9, 30);
  std::size_t peak = 0;
  for (std::size_t b = 1; b < prof.value.size(); ++b)
    if (prof.value[b] > prof.value[peak]) peak = b;
  EXPECT_GT(prof.r[peak], 0.05);
  EXPECT_GT(prof.value[peak], 1.1);  // compression above ambient
  // spherical symmetry: +x and +y momenta mirror to ~roundoff
  EXPECT_LT(norm(l1.momentum), 1e-10);
}

TEST_F(ExtEnv, RegridRefinesWhereDense) {
  // Start a star on a coarse tree with a permissive threshold, then
  // regrid: the tree must refine around the star, and mass must be
  // conserved exactly by the copy/prolongation transfer.
  auto sc = scen::rotating_star();
  app::sim_options opt;
  opt.max_level = 3;
  opt.rho_refine = real(0.5);  // only the dense core triggers refinement
  app::simulation sim(sc, opt);
  sim.initialize();
  const auto before = sim.measure();
  const auto leaves_before = sim.num_leaves();
  const bool changed = sim.regrid();
  const auto after = sim.measure();
  EXPECT_TRUE(changed || sim.num_leaves() == leaves_before);
  EXPECT_NEAR(after.mass, before.mass, 1e-12 * before.mass);
  EXPECT_NEAR(after.gas_energy, before.gas_energy,
              1e-12 * std::abs(before.gas_energy));
  // the dense core region must sit at max_level
  const index_t center = sim.topo().find_enclosing(
      tree::code_from_coords(opt.max_level,
                             {SUBGRID_N / 2, SUBGRID_N / 2, SUBGRID_N / 2}));
  (void)center;
  const auto s = sim.topo().stats();
  EXPECT_GT(s.leaves_per_level[static_cast<std::size_t>(opt.max_level)], 0);
}

TEST_F(ExtEnv, RegridIdempotentWhenNothingChanges) {
  auto sc = scen::rotating_star();
  app::sim_options opt;
  opt.max_level = 2;
  opt.rho_refine = real(1e-9);  // everything already refined at init
  app::simulation sim(sc, opt);
  sim.initialize();
  sim.regrid();
  EXPECT_FALSE(sim.regrid());  // second regrid: no change
}

TEST_F(ExtEnv, RegridThenStepStable) {
  auto sc = scen::rotating_star();
  app::sim_options opt;
  opt.max_level = 2;
  opt.rho_refine = real(0.5);
  app::simulation sim(sc, opt);
  sim.initialize();
  sim.regrid();
  const auto l0 = sim.measure();
  sim.step();
  const auto l1 = sim.measure();
  EXPECT_LT(std::abs(l1.mass - l0.mass) / l0.mass, 1e-12);
}

TEST_F(ExtEnv, SliceExtractionCoversPlane) {
  auto sc = scen::rotating_star();
  app::sim_options opt;
  opt.max_level = 2;
  app::simulation sim(sc, opt);
  sim.initialize();
  const auto cells = app::extract_slice(sim, grid::f_rho, 2, 0.01);
  // the z~0 plane of a level-2 uniform region: 32x32 cells
  EXPECT_GE(cells.size(), 32u * 32u);
  real peak = 0;
  for (const auto& c : cells) peak = std::max(peak, c.value);
  EXPECT_GT(peak, 1.0);  // stellar core density

  const std::string path = testing::TempDir() + "/octo_slice.csv";
  const auto n = app::write_slice_csv(sim, grid::f_rho, 2, 0.01, path);
  EXPECT_EQ(n, cells.size());
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "x,y,dx,rho");
  std::remove(path.c_str());
}

TEST_F(ExtEnv, RadialProfileMonotoneForPolytrope) {
  auto sc = scen::rotating_star();
  app::sim_options opt;
  opt.max_level = 2;
  app::simulation sim(sc, opt);
  sim.initialize();
  const auto prof = app::extract_radial_profile(sim, grid::f_rho, 0.4, 10);
  // Skip bins narrower than the grid spacing (no cell centers fall there).
  real prev = -1;
  for (std::size_t b = 0; b < prof.value.size(); ++b) {
    if (prof.count[b] == 0) continue;
    if (prev >= 0)
      EXPECT_LE(prof.value[b], prev * (1 + 1e-6)) << "bin " << b;
    prev = prof.value[b];
  }
}

TEST(McLimiter, UniformStateStillZeroDivergence) {
  hydro::hydro_options opt;
  opt.limiter = hydro::slope_limiter::mc;
  subgrid u(rvec3{0, 0, 0}, 0.1);
  const real eint = 1.0 / (opt.gas.gamma - 1);
  for (int i = -G; i < N + G; ++i)
    for (int j = -G; j < N + G; ++j)
      for (int k = -G; k < N + G; ++k) {
        u.at(grid::f_rho, i, j, k) = 1.0;
        u.at(grid::f_egas, i, j, k) = eint;
        u.at(grid::f_tau, i, j, k) = std::pow(eint, 1 / opt.gas.gamma);
        u.at(grid::f_spc0, i, j, k) = 1.0;
      }
  hydro::workspace ws;
  std::vector<real> dudt(static_cast<std::size_t>(hydro::dudt_size), 0);
  hydro::flux_divergence(u, opt, ws, dudt);
  for (const real v : dudt) EXPECT_NEAR(v, 0.0, 1e-13);
}

TEST(McLimiter, ReconstructsLinearProfilesExactly) {
  // On a linear profile both limiters give the exact slope, so the flux
  // divergence of a linear density advected at constant velocity matches
  // between minmod and MC to roundoff; on a *curved* profile MC is less
  // diffusive (different dudt).
  hydro::hydro_options mm, mc;
  mc.limiter = hydro::slope_limiter::mc;
  subgrid u(rvec3{0, 0, 0}, 0.1);
  const real eint = 10.0 / (mm.gas.gamma - 1);  // high pressure floor
  for (int i = -G; i < N + G; ++i)
    for (int j = -G; j < N + G; ++j)
      for (int k = -G; k < N + G; ++k) {
        const real rho = 2.0 + 0.05 * i;  // linear in x
        u.at(grid::f_rho, i, j, k) = rho;
        u.at(grid::f_sx, i, j, k) = rho * 0.3;
        u.at(grid::f_egas, i, j, k) = eint + 0.5 * rho * 0.09;
        u.at(grid::f_tau, i, j, k) = std::pow(eint, 1 / mm.gas.gamma);
        u.at(grid::f_spc0, i, j, k) = rho;
      }
  hydro::workspace w1, w2;
  std::vector<real> d1(static_cast<std::size_t>(hydro::dudt_size), 0);
  std::vector<real> d2(static_cast<std::size_t>(hydro::dudt_size), 0);
  hydro::flux_divergence(u, mm, w1, d1);
  hydro::flux_divergence(u, mc, w2, d2);
  for (std::size_t c = 0; c < d1.size(); ++c)
    ASSERT_NEAR(d1[c], d2[c], 1e-11 * std::max(std::abs(d1[c]), real(1)));
}

TEST_F(ExtEnv, VtkOutputWellFormed) {
  auto sc = scen::rotating_star();
  app::sim_options opt;
  opt.max_level = 1;
  app::simulation sim(sc, opt);
  sim.initialize();
  const std::string path = testing::TempDir() + "/octo_out.vtk";
  const auto bytes = app::write_vtk(sim, path);
  EXPECT_GT(bytes, 0u);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "# vtk DataFile Version 3.0");
  // count CELL blocks
  std::size_t cells_decl = 0, scalars = 0;
  while (std::getline(in, line)) {
    if (line.rfind("CELLS ", 0) == 0) ++cells_decl;
    if (line.rfind("SCALARS ", 0) == 0) ++scalars;
  }
  EXPECT_EQ(cells_decl, 1u);
  EXPECT_EQ(scalars, 2u);  // rho + egas by default
  std::remove(path.c_str());
}

TEST(CriticalPath, ChainAndWidth) {
  des::graph g;
  const auto a = g.add_task(1.0, 0);
  const auto b = g.add_task(2.0, 0);
  const auto c = g.add_task(4.0, 0);  // parallel to the a->b chain
  g.add_edge(a, b);
  (void)c;
  const auto pa = des::analyze_critical_path(g, machine::fugaku());
  EXPECT_DOUBLE_EQ(pa.critical_path_seconds, 4.0);
  EXPECT_DOUBLE_EQ(pa.total_work_seconds, 7.0);
}

TEST(CriticalPath, RemoteEdgeAddsLatency) {
  des::graph g;
  const auto a = g.add_task(1.0, 0);
  const auto b = g.add_task(1.0, 1);
  g.add_edge(a, b, 1e6);
  const auto m = machine::fugaku();
  const auto pa = des::analyze_critical_path(g, m);
  EXPECT_DOUBLE_EQ(pa.critical_path_seconds, 2.0);
  EXPECT_NEAR(pa.with_latency_seconds,
              2.0 + (m.net.latency_us + m.net.per_message_us) * 1e-6 +
                  1e6 / (m.net.bandwidth_gbs * 1e9),
              1e-12);
}

TEST(CriticalPath, LowerBoundsSimulatedMakespan) {
  auto sc = scen::rotating_star();
  const auto topo = sc.make_topology(3);
  const auto part = tree::partition_sfc(topo, 8);
  const des::workload_options opt;
  des::graph g = des::build_step_graph(topo, part, machine::fugaku(), opt);
  const auto pa = des::analyze_critical_path(g, machine::fugaku());
  des::engine_config cfg;
  cfg.machine = machine::fugaku();
  cfg.num_nodes = 8;
  const auto r = des::simulate(g, cfg);
  EXPECT_GE(r.makespan, pa.critical_path_seconds - 1e-12);
  EXPECT_GE(r.makespan, pa.total_work_seconds / (8.0 * 48) - 1e-12);
}

}  // namespace
}  // namespace octo
