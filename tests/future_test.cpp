#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "amt/future.hpp"
#include "apex/apex.hpp"

namespace octo::amt {
namespace {

struct FutureTest : testing::Test {
  runtime rt{2};
};

TEST_F(FutureTest, PromiseThenFutureValue) {
  promise<int> p;
  auto f = p.get_future();
  EXPECT_TRUE(f.valid());
  EXPECT_FALSE(f.is_ready());
  p.set_value(42);
  EXPECT_TRUE(f.is_ready());
  EXPECT_EQ(f.get(rt), 42);
}

TEST_F(FutureTest, VoidFuture) {
  promise<void> p;
  auto f = p.get_future();
  p.set_value();
  EXPECT_NO_THROW(f.get(rt));
}

TEST_F(FutureTest, MakeReadyFuture) {
  auto f = make_ready_future(std::string("hello"));
  EXPECT_TRUE(f.is_ready());
  EXPECT_EQ(f.get(rt), "hello");
  auto fv = make_ready_future();
  EXPECT_TRUE(fv.is_ready());
}

TEST_F(FutureTest, MoveOnlyValue) {
  promise<std::unique_ptr<int>> p;
  auto f = p.get_future();
  p.set_value(std::make_unique<int>(5));
  auto v = f.get(rt);
  ASSERT_TRUE(v);
  EXPECT_EQ(*v, 5);
}

TEST_F(FutureTest, AsyncReturnsResult) {
  auto f = async([] { return 6 * 7; }, rt);
  EXPECT_EQ(f.get(rt), 42);
}

TEST_F(FutureTest, AsyncVoid) {
  std::atomic<bool> hit{false};
  auto f = async([&] { hit.store(true); }, rt);
  f.get(rt);
  EXPECT_TRUE(hit.load());
}

TEST_F(FutureTest, ExceptionPropagates) {
  auto f = async([]() -> int { throw std::runtime_error("boom"); }, rt);
  EXPECT_THROW(f.get(rt), std::runtime_error);
}

TEST_F(FutureTest, ThenChainsValues) {
  auto f = async([] { return 10; }, rt)
               .then([](int v) { return v + 1; }, rt)
               .then([](int v) { return v * 2; }, rt);
  EXPECT_EQ(f.get(rt), 22);
}

TEST_F(FutureTest, ThenVoidToValue) {
  auto f = async([] {}, rt).then([] { return 3; }, rt);
  EXPECT_EQ(f.get(rt), 3);
}

TEST_F(FutureTest, ThenValueToVoid) {
  std::atomic<int> sink{0};
  auto f = async([] { return 9; }, rt).then([&](int v) { sink.store(v); },
                                            rt);
  f.get(rt);
  EXPECT_EQ(sink.load(), 9);
}

TEST_F(FutureTest, ThenOnReadyFutureRunsImmediately) {
  auto f = make_ready_future(5).then_inline([](int v) { return v * v; }, rt);
  EXPECT_EQ(f.get(rt), 25);
}

TEST_F(FutureTest, ThenExceptionPropagatesThroughChain) {
  auto f = async([]() -> int { throw std::logic_error("x"); }, rt)
               .then([](int v) { return v + 1; }, rt);
  EXPECT_THROW(f.get(rt), std::logic_error);
}

TEST_F(FutureTest, WhenAllVoid) {
  std::vector<future<int>> futs;
  std::atomic<int> sum{0};
  for (int i = 1; i <= 10; ++i)
    futs.push_back(async([i, &sum] {
      sum.fetch_add(i);
      return i;
    }, rt));
  when_all(std::move(futs), rt).get(rt);
  EXPECT_EQ(sum.load(), 55);
}

TEST_F(FutureTest, WhenAllEmpty) {
  std::vector<future<int>> futs;
  auto f = when_all(std::move(futs), rt);
  EXPECT_TRUE(f.is_ready());
}

TEST_F(FutureTest, WhenAllValuesGathers) {
  std::vector<future<int>> futs;
  for (int i = 0; i < 5; ++i) futs.push_back(async([i] { return i * i; }, rt));
  auto vals = when_all_values(std::move(futs), rt).get(rt);
  ASSERT_EQ(vals.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(vals[static_cast<std::size_t>(i)], i * i);
}

TEST_F(FutureTest, WhenAllPropagatesException) {
  std::vector<future<int>> futs;
  futs.push_back(async([]() -> int { return 1; }, rt));
  futs.push_back(async([]() -> int { throw std::runtime_error("bad"); }, rt));
  EXPECT_THROW(when_all(std::move(futs), rt).get(rt), std::runtime_error);
}

TEST_F(FutureTest, WaitAllHelper) {
  std::vector<future<void>> futs;
  std::atomic<int> n{0};
  for (int i = 0; i < 20; ++i)
    futs.push_back(async([&] { n.fetch_add(1); }, rt));
  wait_all(futs, rt);
  EXPECT_EQ(n.load(), 20);
}

TEST_F(FutureTest, DoubleSetValueThrows) {
  promise<int> p;
  p.set_value(1);
  EXPECT_THROW(p.set_value(2), octo::error);
}

TEST_F(FutureTest, ContinuationDeepChainNoStackOverflow) {
  // 10k chained inline continuations must not recurse on the stack:
  // each fires only when its predecessor's value is set.
  auto f = make_ready_future(0);
  for (int i = 0; i < 10000; ++i)
    f = f.then_inline([](int v) { return v + 1; }, rt);
  EXPECT_EQ(f.get(rt), 10000);
}

std::uint64_t counter_value(const std::string& name) {
  for (const auto& c : apex::registry::instance().counters())
    if (c.name == name) return c.value;
  return 0;
}

TEST_F(FutureTest, SharedFutureManyReadersPeekDoesNotConsume) {
  promise<int> p;
  shared_future<int> a = p.get_future();
  shared_future<int> b = a;  // copyable edge handle
  p.set_value(7);
  EXPECT_EQ(a.get(rt), 7);
  EXPECT_EQ(a.get(rt), 7);  // peek-based: a second read still sees the value
  EXPECT_EQ(b.get(rt), 7);
}

TEST_F(FutureTest, SharedFutureVoidExceptionRethrowsForEveryReader) {
  promise<void> p;
  shared_future<void> a = p.get_future();
  shared_future<void> b = a;
  p.set_exception(std::make_exception_ptr(std::runtime_error("boom")));
  EXPECT_TRUE(a.has_exception());
  EXPECT_THROW(a.get(rt), std::runtime_error);
  EXPECT_THROW(b.get(rt), std::runtime_error);  // not consumed by a's read
}

TEST_F(FutureTest, DataflowFiresOnlyAfterEveryDependency) {
  promise<void> p1, p2;
  shared_future<void> d1 = p1.get_future();
  shared_future<void> d2 = p2.get_future();
  std::atomic<bool> ran{false};
  auto f = dataflow([&] { ran.store(true); }, {d1, d2}, rt);
  EXPECT_FALSE(f.is_ready());
  p1.set_value();
  EXPECT_FALSE(f.is_ready());  // one input still pending
  p2.set_value();
  f.get(rt);
  EXPECT_TRUE(ran.load());
}

TEST_F(FutureTest, DataflowIgnoresInvalidDepsAndRunsEmptyImmediately) {
  std::vector<shared_future<void>> deps(4);  // all default-constructed
  std::atomic<bool> ran{false};
  auto f = dataflow([&] { ran.store(true); }, std::move(deps), rt);
  f.get(rt);
  EXPECT_TRUE(ran.load());
}

TEST_F(FutureTest, DataflowReturnsValue) {
  shared_future<void> d = async([] {}, rt);
  auto f = dataflow([] { return 123; }, {d}, rt);
  EXPECT_EQ(f.get(rt), 123);
}

TEST_F(FutureTest, DataflowDepErrorSkipsTaskDeterministically) {
  promise<void> p1, p2;
  shared_future<void> d1 = p1.get_future();
  shared_future<void> d2 = p2.get_future();
  std::atomic<bool> ran{false};
  auto f = dataflow([&] { ran.store(true); }, {d1, d2}, rt);
  // The *second* dep fails first in wall-clock time; the surfaced error
  // must still be the first failing dep in deps order (d1's logic_error).
  p2.set_exception(std::make_exception_ptr(std::runtime_error("late")));
  p1.set_exception(std::make_exception_ptr(std::logic_error("first")));
  EXPECT_THROW(f.get(rt), std::logic_error);
  EXPECT_FALSE(ran.load());  // fn never ran on a poisoned input set
}

TEST_F(FutureTest, DataflowMidGraphThrowPropagatesDownChain) {
  shared_future<void> a = dataflow([] {}, std::vector<shared_future<void>>{},
                                   rt);
  shared_future<void> b =
      dataflow([]() { throw std::runtime_error("mid"); }, {a}, rt);
  std::atomic<bool> tail_ran{false};
  auto c = dataflow([&] { tail_ran.store(true); }, {b}, rt);
  EXPECT_THROW(c.get(rt), std::runtime_error);
  EXPECT_FALSE(tail_ran.load());
}

TEST_F(FutureTest, WhenAllSharedJoinsAndPropagatesFirstErrorInOrder) {
  promise<void> p1, p2, p3;
  shared_future<void> d1 = p1.get_future();
  shared_future<void> d2 = p2.get_future();
  shared_future<void> d3 = p3.get_future();
  auto ok = when_all(std::vector<shared_future<void>>{d1, d3}, rt);
  auto bad = when_all(std::vector<shared_future<void>>{d1, d2, d3}, rt);
  p3.set_exception(std::make_exception_ptr(std::runtime_error("later dep")));
  p2.set_exception(std::make_exception_ptr(std::logic_error("earlier dep")));
  p1.set_value();
  EXPECT_THROW(ok.get(rt), std::runtime_error);
  EXPECT_THROW(bad.get(rt), std::logic_error);  // deps-order, not time-order
}

TEST_F(FutureTest, GetAllSharedDrainsThenRethrowsFirstInVectorOrder) {
  promise<void> p1, p2, p3;
  std::vector<shared_future<void>> futs = {
      p1.get_future(), p2.get_future(), p3.get_future()};
  futs.insert(futs.begin(), shared_future<void>{});  // invalid: skipped
  p1.set_value();
  p2.set_exception(std::make_exception_ptr(std::logic_error("second")));
  p3.set_exception(std::make_exception_ptr(std::runtime_error("third")));
  EXPECT_THROW(get_all(futs, rt), std::logic_error);
}

TEST_F(FutureTest, CombinatorCountersTick) {
  const auto deferred0 = counter_value("amt.tasks_deferred");
  const auto inline0 = counter_value("amt.continuations_inline");
  promise<void> p;
  shared_future<void> d = p.get_future();
  auto f = dataflow([] {}, {d}, rt);  // one unresolved input: deferred
  promise<int> pi;
  auto g = pi.get_future().then_inline([](int v) { return v + 1; }, rt);
  p.set_value();
  pi.set_value(1);
  f.get(rt);
  EXPECT_EQ(g.get(rt), 2);
  EXPECT_GE(counter_value("amt.tasks_deferred"), deferred0 + 1);
  EXPECT_GE(counter_value("amt.continuations_inline"), inline0 + 1);
}

TEST_F(FutureTest, DataflowLatticeStress) {
  // Wide dependency lattice exercised from many workers at once — the
  // TSan target (`ctest -L san` under -DOCTO_SANITIZE=thread): every task
  // depends on its predecessor layer's neighborhood, so join counters,
  // inline continuations, and cross-thread fire() races all get traffic.
  runtime stress_rt{4};
  constexpr int kWidth = 16;
  constexpr int kLayers = 64;
  std::atomic<int> executed{0};
  std::vector<shared_future<void>> prev;
  for (int i = 0; i < kWidth; ++i)
    prev.push_back(async([&] { executed.fetch_add(1); }, stress_rt));
  for (int layer = 1; layer < kLayers; ++layer) {
    std::vector<shared_future<void>> cur;
    for (int i = 0; i < kWidth; ++i) {
      std::vector<shared_future<void>> deps = {
          prev[static_cast<std::size_t>(i)],
          prev[static_cast<std::size_t>((i + 1) % kWidth)],
          prev[static_cast<std::size_t>((i + kWidth - 1) % kWidth)]};
      cur.push_back(dataflow([&] { executed.fetch_add(1); }, std::move(deps),
                             stress_rt));
    }
    prev = std::move(cur);
  }
  get_all(prev, stress_rt);
  EXPECT_EQ(executed.load(), kWidth * kLayers);
}

}  // namespace
}  // namespace octo::amt
