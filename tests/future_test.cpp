#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>

#include "amt/future.hpp"

namespace octo::amt {
namespace {

struct FutureTest : testing::Test {
  runtime rt{2};
};

TEST_F(FutureTest, PromiseThenFutureValue) {
  promise<int> p;
  auto f = p.get_future();
  EXPECT_TRUE(f.valid());
  EXPECT_FALSE(f.is_ready());
  p.set_value(42);
  EXPECT_TRUE(f.is_ready());
  EXPECT_EQ(f.get(rt), 42);
}

TEST_F(FutureTest, VoidFuture) {
  promise<void> p;
  auto f = p.get_future();
  p.set_value();
  EXPECT_NO_THROW(f.get(rt));
}

TEST_F(FutureTest, MakeReadyFuture) {
  auto f = make_ready_future(std::string("hello"));
  EXPECT_TRUE(f.is_ready());
  EXPECT_EQ(f.get(rt), "hello");
  auto fv = make_ready_future();
  EXPECT_TRUE(fv.is_ready());
}

TEST_F(FutureTest, MoveOnlyValue) {
  promise<std::unique_ptr<int>> p;
  auto f = p.get_future();
  p.set_value(std::make_unique<int>(5));
  auto v = f.get(rt);
  ASSERT_TRUE(v);
  EXPECT_EQ(*v, 5);
}

TEST_F(FutureTest, AsyncReturnsResult) {
  auto f = async([] { return 6 * 7; }, rt);
  EXPECT_EQ(f.get(rt), 42);
}

TEST_F(FutureTest, AsyncVoid) {
  std::atomic<bool> hit{false};
  auto f = async([&] { hit.store(true); }, rt);
  f.get(rt);
  EXPECT_TRUE(hit.load());
}

TEST_F(FutureTest, ExceptionPropagates) {
  auto f = async([]() -> int { throw std::runtime_error("boom"); }, rt);
  EXPECT_THROW(f.get(rt), std::runtime_error);
}

TEST_F(FutureTest, ThenChainsValues) {
  auto f = async([] { return 10; }, rt)
               .then([](int v) { return v + 1; }, rt)
               .then([](int v) { return v * 2; }, rt);
  EXPECT_EQ(f.get(rt), 22);
}

TEST_F(FutureTest, ThenVoidToValue) {
  auto f = async([] {}, rt).then([] { return 3; }, rt);
  EXPECT_EQ(f.get(rt), 3);
}

TEST_F(FutureTest, ThenValueToVoid) {
  std::atomic<int> sink{0};
  auto f = async([] { return 9; }, rt).then([&](int v) { sink.store(v); },
                                            rt);
  f.get(rt);
  EXPECT_EQ(sink.load(), 9);
}

TEST_F(FutureTest, ThenOnReadyFutureRunsImmediately) {
  auto f = make_ready_future(5).then_inline([](int v) { return v * v; }, rt);
  EXPECT_EQ(f.get(rt), 25);
}

TEST_F(FutureTest, ThenExceptionPropagatesThroughChain) {
  auto f = async([]() -> int { throw std::logic_error("x"); }, rt)
               .then([](int v) { return v + 1; }, rt);
  EXPECT_THROW(f.get(rt), std::logic_error);
}

TEST_F(FutureTest, WhenAllVoid) {
  std::vector<future<int>> futs;
  std::atomic<int> sum{0};
  for (int i = 1; i <= 10; ++i)
    futs.push_back(async([i, &sum] {
      sum.fetch_add(i);
      return i;
    }, rt));
  when_all(std::move(futs), rt).get(rt);
  EXPECT_EQ(sum.load(), 55);
}

TEST_F(FutureTest, WhenAllEmpty) {
  std::vector<future<int>> futs;
  auto f = when_all(std::move(futs), rt);
  EXPECT_TRUE(f.is_ready());
}

TEST_F(FutureTest, WhenAllValuesGathers) {
  std::vector<future<int>> futs;
  for (int i = 0; i < 5; ++i) futs.push_back(async([i] { return i * i; }, rt));
  auto vals = when_all_values(std::move(futs), rt).get(rt);
  ASSERT_EQ(vals.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(vals[static_cast<std::size_t>(i)], i * i);
}

TEST_F(FutureTest, WhenAllPropagatesException) {
  std::vector<future<int>> futs;
  futs.push_back(async([]() -> int { return 1; }, rt));
  futs.push_back(async([]() -> int { throw std::runtime_error("bad"); }, rt));
  EXPECT_THROW(when_all(std::move(futs), rt).get(rt), std::runtime_error);
}

TEST_F(FutureTest, WaitAllHelper) {
  std::vector<future<void>> futs;
  std::atomic<int> n{0};
  for (int i = 0; i < 20; ++i)
    futs.push_back(async([&] { n.fetch_add(1); }, rt));
  wait_all(futs, rt);
  EXPECT_EQ(n.load(), 20);
}

TEST_F(FutureTest, DoubleSetValueThrows) {
  promise<int> p;
  p.set_value(1);
  EXPECT_THROW(p.set_value(2), octo::error);
}

TEST_F(FutureTest, ContinuationDeepChainNoStackOverflow) {
  // 10k chained inline continuations must not recurse on the stack:
  // each fires only when its predecessor's value is set.
  auto f = make_ready_future(0);
  for (int i = 0; i < 10000; ++i)
    f = f.then_inline([](int v) { return v + 1; }, rt);
  EXPECT_EQ(f.get(rt), 10000);
}

}  // namespace
}  // namespace octo::amt
