/// End-to-end SDC fault-injection matrix (the tentpole acceptance): an
/// injected conserved-state or multipole-moment bit flip is detected
/// within one step, contained by the in-memory snapshot retry, escalated
/// to checkpoint rollback when it re-fires on the retry, and the finished
/// run is bitwise identical to an uninterrupted one — in app::simulation
/// and dist::cluster (1 and 4 localities), composed with locality-kill
/// recovery and dynamic rebalancing.  The whole binary is re-run under
/// OCTO_STEP_MODE=dataflow by the suite (see tests/CMakeLists.txt).

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apex/analyze.hpp"
#include "apex/metrics.hpp"
#include "app/simulation.hpp"
#include "common/fault.hpp"
#include "dist/checkpoint.hpp"
#include "dist/cluster.hpp"
#include "dist/recovery.hpp"
#include "scenarios/scenarios.hpp"

namespace octo {
namespace {

namespace fs = std::filesystem;

/// Cheap hydro-only scenario for the per-field matrix (no gravity solve):
/// a smooth density/pressure bump, refined one level.
scen::scenario bump_scenario() {
  scen::scenario sc;
  sc.name = "sdc_bump";
  sc.domain_half = 1;
  sc.omega = 0;
  sc.refine = [](int lvl, const rvec3&, real) { return lvl < 1; };
  const hydro::ideal_gas gas;
  sc.gas = gas;
  sc.init = [gas](grid::subgrid& u) {
    for (int i = 0; i < 8; ++i)
      for (int j = 0; j < 8; ++j)
        for (int k = 0; k < 8; ++k) {
          const rvec3 x = u.cell_center(i, j, k);
          const real rho = 1 + real(0.5) * std::exp(-32 * norm2(x));
          const real eint = rho / (gas.gamma - 1);
          u.at(grid::f_rho, i, j, k) = rho;
          u.at(grid::f_sx, i, j, k) = 0;
          u.at(grid::f_sy, i, j, k) = 0;
          u.at(grid::f_sz, i, j, k) = 0;
          u.at(grid::f_egas, i, j, k) = eint;
          u.at(grid::f_tau, i, j, k) = std::pow(eint, 1 / gas.gamma);
          u.at(grid::f_spc0, i, j, k) = rho;
          u.at(grid::f_spc1, i, j, k) = 0;
        }
  };
  return sc;
}

fault::bitflip_spec flip_at(std::uint64_t step, std::uint64_t loc = 0,
                            std::uint64_t leaf = 1, std::uint64_t field = 0,
                            std::uint64_t count = 1) {
  fault::bitflip_spec s;
  s.loc = loc;
  s.step = step;
  s.leaf = leaf;
  s.field = field;
  s.count = count;
  return s;
}

struct SdcEnv : testing::Test {
  amt::runtime rt{3};
  amt::scoped_global_runtime guard{rt};
  std::string dir;

  void SetUp() override {
    fault::injector::instance().reset();
    dir = testing::TempDir() + "/octo_sdc_" +
          testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir);
    fs::create_directories(dir);
  }
  void TearDown() override {
    fault::injector::instance().reset();
    fs::remove_all(dir);
  }

  static dist::dist_options cluster_opts(int nloc) {
    dist::dist_options o;
    o.num_localities = nloc;
    o.sim.max_level = 1;
    return o;
  }

  template <typename A, typename B>
  static void expect_bitwise_equal(const A& a, const B& b) {
    ASSERT_EQ(a.topo().num_leaves(), b.topo().num_leaves());
    for (const index_t leaf : a.topo().leaves()) {
      const auto& ga = a.leaf(leaf);
      const auto& gb = b.leaf(leaf);
      for (int f = 0; f < grid::NFIELD; ++f)
        for (int i = 0; i < 8; ++i)
          for (int j = 0; j < 8; ++j)
            for (int k = 0; k < 8; ++k)
              ASSERT_EQ(ga.at(f, i, j, k), gb.at(f, i, j, k))
                  << "leaf " << leaf << " field " << f << " cell (" << i
                  << ", " << j << ", " << k << ")";
    }
  }
};

/// Matrix row 1: a single bit flip in *every* conserved field is detected
/// in the very step it lands (the seal verify runs before the state is
/// next read), repaired by one snapshot retry, and the run finishes
/// bitwise identical to an uninterrupted baseline.
TEST_F(SdcEnv, SimulationRepairsBitflipInEveryField) {
  const auto sc = bump_scenario();
  app::sim_options so;
  so.max_level = 1;
  so.self_gravity = false;

  app::simulation ref(sc, so);
  ref.initialize();
  const int target = 3;
  for (int s = 0; s < target; ++s) ref.step();

  for (std::uint64_t field = 0; field < grid::NFIELD; ++field) {
    fault::injector::instance().reset();
    fault::injector::instance().arm_state_bitflip(
        flip_at(/*step=*/2, /*loc=*/0, /*leaf=*/1, field));

    app::simulation sim(sc, so);
    sim.initialize();
    sim.step();
    EXPECT_EQ(sim.sdc_detections(), 0u) << "field " << field;
    sim.step();  // the armed step: flip lands, is caught, is repaired
    EXPECT_EQ(sim.sdc_detections(), 1u)
        << "field " << field << " flip not detected within its own step";
    EXPECT_EQ(sim.sdc_retries(), 1u) << "field " << field;
    sim.step();
    EXPECT_EQ(sim.sdc_rollbacks(), 0u) << "field " << field;
    EXPECT_GT(sim.sdc_audits(), 0u);
    EXPECT_EQ(fault::injector::instance().injected(), 1u);

    EXPECT_EQ(sim.time(), ref.time()) << "field " << field;
    EXPECT_EQ(sim.dt(), ref.dt()) << "field " << field;
    expect_bitwise_equal(ref, sim);
  }
}

/// Random-seeded mode: the target leaf / field / cell / bit are drawn from
/// the OCTO_FAULT_SEED stream; whatever they land on must be caught.
TEST_F(SdcEnv, SimulationRepairsRandomSeededBitflip) {
  const auto sc = bump_scenario();
  app::sim_options so;
  so.max_level = 1;
  so.self_gravity = false;

  app::simulation ref(sc, so);
  ref.initialize();
  for (int s = 0; s < 3; ++s) ref.step();

  fault::bitflip_spec spec;
  spec.random = true;
  spec.step = 2;
  fault::injector::instance().arm_state_bitflip(spec);

  app::simulation sim(sc, so);
  sim.initialize();
  for (int s = 0; s < 3; ++s) sim.step();
  EXPECT_EQ(sim.sdc_detections(), 1u);
  EXPECT_EQ(sim.sdc_retries(), 1u);
  EXPECT_EQ(sim.sdc_rollbacks(), 0u);
  expect_bitwise_equal(ref, sim);
}

/// A flipped multipole-moment coefficient (gravity solver state) is caught
/// by the moment seal and repaired the same way.
TEST_F(SdcEnv, SimulationRepairsMomentBitflip) {
  const auto sc = scen::rotating_star();
  app::sim_options so;
  so.max_level = 1;

  app::simulation ref(sc, so);
  ref.initialize();
  for (int s = 0; s < 3; ++s) ref.step();

  fault::injector::instance().arm_moment_bitflip(
      flip_at(/*step=*/2, /*loc=*/0, /*leaf=*/2, /*field=*/1));

  app::simulation sim(sc, so);
  sim.initialize();
  for (int s = 0; s < 3; ++s) sim.step();
  EXPECT_EQ(sim.sdc_detections(), 1u);
  EXPECT_EQ(sim.sdc_retries(), 1u);
  EXPECT_EQ(fault::injector::instance().injected(), 1u);
  EXPECT_EQ(sim.time(), ref.time());
  expect_bitwise_equal(ref, sim);
}

/// Negative control: with auditing off the same flip sails through
/// undetected — the defense, not luck, is what catches it above.
TEST_F(SdcEnv, AuditDisabledMissesTheFlip) {
  const auto sc = bump_scenario();
  app::sim_options so;
  so.max_level = 1;
  so.self_gravity = false;
  so.audit.enabled = false;

  fault::injector::instance().arm_state_bitflip(flip_at(2));
  app::simulation sim(sc, so);
  sim.initialize();
  for (int s = 0; s < 3; ++s) sim.step();
  EXPECT_EQ(fault::injector::instance().injected(), 1u);
  EXPECT_EQ(sim.sdc_audits(), 0u);
  EXPECT_EQ(sim.sdc_detections(), 0u);
  EXPECT_EQ(sim.sdc_retries(), 0u);
}

/// Matrix row 2: the distributed cluster at 1 and 4 localities.  The flip
/// targets an owned leaf of a chosen locality; the containment retry must
/// leave the run bitwise identical to the uninterrupted baseline, and the
/// sdc_* counters must surface in the per-step metrics stream.
TEST_F(SdcEnv, ClusterRepairsStateBitflipAcrossLocalityCounts) {
  const auto sc = scen::rotating_star();
  for (const int nloc : {1, 4}) {
    fault::injector::instance().reset();

    dist::cluster ref(sc, cluster_opts(nloc));
    ref.initialize();
    const int target = 4;
    for (int s = 0; s < target; ++s) ref.step();

    fault::injector::instance().arm_state_bitflip(flip_at(
        /*step=*/2, /*loc=*/static_cast<std::uint64_t>(nloc - 1),
        /*leaf=*/3, /*field=*/grid::f_egas));

    apex::metrics_sink sink;
    ASSERT_TRUE(sink.open(dir + "/steps" + std::to_string(nloc) + ".jsonl"));
    dist::cluster cl(sc, cluster_opts(nloc));
    cl.initialize();
    cl.set_metrics_sink(&sink);
    for (int s = 0; s < target; ++s) cl.step();
    sink.close();

    EXPECT_EQ(cl.sdc_detections(), 1u) << nloc << " localities";
    EXPECT_EQ(cl.sdc_retries(), 1u) << nloc << " localities";
    EXPECT_EQ(cl.sdc_rollbacks(), 0u) << nloc << " localities";
    EXPECT_EQ(cl.time(), ref.time());
    EXPECT_EQ(cl.dt(), ref.dt());
    expect_bitwise_equal(ref, cl);

    std::ifstream in(dir + "/steps" + std::to_string(nloc) + ".jsonl");
    std::string line, all;
    while (std::getline(in, line)) all += line + "\n";
    EXPECT_NE(all.find("\"sdc_detected\":1"), std::string::npos) << all;
    EXPECT_NE(all.find("\"sdc_retries\":1"), std::string::npos) << all;
  }
}

/// Matrix row 3: a flip that re-fires on the retry attempt (count=2 — a
/// persistent fault the in-memory containment cannot repair) escalates to
/// the checkpoint-rollback driver, and the replayed run is still bitwise
/// identical to an uninterrupted one.
TEST_F(SdcEnv, ClusterEscalatesToCheckpointRollbackWhenRetryRefires) {
  const auto sc = scen::rotating_star();
  const int target = 4;

  dist::cluster ref(sc, cluster_opts(3));
  ref.initialize();
  for (int s = 0; s < target; ++s) ref.step();

  fault::injector::instance().arm_state_bitflip(
      flip_at(/*step=*/2, /*loc=*/1, /*leaf=*/0, /*field=*/grid::f_rho,
              /*count=*/2));
  dist::cluster cl(sc, cluster_opts(3));
  cl.initialize();
  dist::run_options opt;
  opt.dir = dir;
  opt.every = 1;
  const auto res = dist::run_with_checkpoints(cl, target, opt);

  EXPECT_EQ(res.steps, target);
  EXPECT_EQ(res.restarts, 1);
  EXPECT_EQ(fault::injector::instance().injected(), 2u);
  EXPECT_EQ(cl.sdc_detections(), 1u);
  EXPECT_EQ(cl.sdc_retries(), 1u);
  EXPECT_EQ(cl.sdc_rollbacks(), 1u);

  EXPECT_EQ(cl.time(), ref.time());
  EXPECT_EQ(cl.steps_taken(), ref.steps_taken());
  expect_bitwise_equal(ref, cl);
}

/// Composition: an SDC retry at step 2 and a locality death at step 4 in
/// the same run — both recovery ladders fire and the survivors still land
/// on the uninterrupted trajectory.
TEST_F(SdcEnv, ContainmentComposesWithLocalityKillRecovery) {
  const auto sc = scen::rotating_star();
  const int target = 6;

  dist::cluster ref(sc, cluster_opts(3));
  ref.initialize();
  for (int s = 0; s < target; ++s) ref.step();

  fault::injector::instance().arm_state_bitflip(
      flip_at(/*step=*/2, /*loc=*/1, /*leaf=*/1, /*field=*/grid::f_sx));
  fault::injector::instance().arm_locality_kill(1, 4);
  dist::cluster cl(sc, cluster_opts(3));
  cl.initialize();
  const auto res = dist::run_with_recovery(cl, target);

  EXPECT_EQ(res.steps, target);
  EXPECT_EQ(res.recoveries, 1);
  EXPECT_EQ(cl.sdc_retries(), 1u);
  EXPECT_FALSE(cl.locality_alive(1));
  EXPECT_EQ(cl.time(), ref.time());
  expect_bitwise_equal(ref, cl);
}

/// Composition: live leaf migration (measured-cost rebalancing) does not
/// invalidate the seals — migrated leaves keep verifying, and a flip is
/// still caught and repaired mid-rebalanced run.
TEST_F(SdcEnv, ContainmentComposesWithRebalancing) {
  const auto sc = scen::rotating_star();
  auto opts = cluster_opts(3);
  opts.lb.every = 2;
  opts.lb.min_gain = 1.0;
  const int target = 5;

  dist::cluster ref(sc, opts);
  ref.initialize();
  for (int s = 0; s < target; ++s) ref.step();

  fault::injector::instance().arm_state_bitflip(
      flip_at(/*step=*/3, /*loc=*/0, /*leaf=*/2, /*field=*/grid::f_tau));
  dist::cluster cl(sc, opts);
  cl.initialize();
  for (int s = 0; s < target; ++s) cl.step();

  EXPECT_EQ(cl.sdc_detections(), 1u);
  EXPECT_EQ(cl.sdc_retries(), 1u);
  EXPECT_EQ(cl.time(), ref.time());
  // Ownership may differ between the two runs (wall-clock-measured costs
  // drive the migrations) but the physics must not.
  expect_bitwise_equal(ref, cl);
}

/// The analyzer surfaces the counters and gates on them: a metrics stream
/// whose final sdc_detected is nonzero is a baseline regression no matter
/// the threshold, and the report flags it loudly.
TEST_F(SdcEnv, AnalyzerFlagsDetectedCorruptionAgainstBaseline) {
  const auto sc = bump_scenario();
  app::sim_options so;
  so.max_level = 1;
  so.self_gravity = false;

  const auto run = [&](const std::string& path, bool flip) {
    fault::injector::instance().reset();
    if (flip) fault::injector::instance().arm_state_bitflip(flip_at(2));
    apex::metrics_sink sink;
    ASSERT_TRUE(sink.open(path));
    app::simulation sim(sc, so);
    sim.initialize();
    sim.set_metrics_sink(&sink);
    for (int s = 0; s < 3; ++s) sim.step();
    sink.close();
  };
  run(dir + "/base.jsonl", false);
  run(dir + "/sdc.jsonl", true);

  const auto base = apex::load_metrics_jsonl(dir + "/base.jsonl");
  const auto cur = apex::load_metrics_jsonl(dir + "/sdc.jsonl");
  ASSERT_EQ(cur.size(), 3u);
  EXPECT_EQ(cur.back().sdc_detected, 1u);
  EXPECT_EQ(cur.back().sdc_retries, 1u);
  EXPECT_GT(cur.back().sdc_audits, 0u);

  // An absurdly loose threshold cannot mask the corruption flag.
  const auto regs = apex::baseline_diff(base, cur, /*threshold_pct=*/1e9);
  ASSERT_FALSE(regs.empty());
  bool flagged = false;
  for (const auto& r : regs) flagged |= r.column == std::string("sdc_detected");
  EXPECT_TRUE(flagged);
  // ... while the clean run passes its own gate.
  EXPECT_TRUE(apex::baseline_diff(base, base, 1e9).empty());

  std::ostringstream report;
  apex::print_metrics_report(report, cur);
  EXPECT_NE(report.str().find("SILENT DATA CORRUPTION DETECTED"),
            std::string::npos)
      << report.str();
}

}  // namespace
}  // namespace octo
