#include <gtest/gtest.h>

#include "tree/morton.hpp"

namespace octo::tree {
namespace {

TEST(Morton, RootProperties) {
  EXPECT_EQ(code_level(root_code), 0);
  EXPECT_EQ(code_coords(root_code), (ivec3{0, 0, 0}));
}

TEST(Morton, ChildParentRoundTrip) {
  for (int oct = 0; oct < 8; ++oct) {
    const code_t c = code_child(root_code, oct);
    EXPECT_EQ(code_level(c), 1);
    EXPECT_EQ(code_parent(c), root_code);
    EXPECT_EQ(code_octant(c), oct);
  }
}

TEST(Morton, OctantBitConvention) {
  // bit 0 = x, bit 1 = y, bit 2 = z
  EXPECT_EQ(code_coords(code_child(root_code, 1)), (ivec3{1, 0, 0}));
  EXPECT_EQ(code_coords(code_child(root_code, 2)), (ivec3{0, 1, 0}));
  EXPECT_EQ(code_coords(code_child(root_code, 4)), (ivec3{0, 0, 1}));
  EXPECT_EQ(code_coords(code_child(root_code, 7)), (ivec3{1, 1, 1}));
}

class MortonLevel : public testing::TestWithParam<int> {};

TEST_P(MortonLevel, CoordsRoundTripAllCells) {
  const int level = GetParam();
  const index_t n = index_t(1) << level;
  // Sweep a sparse but structured set of coordinates.
  for (index_t x = 0; x < n; x += std::max<index_t>(1, n / 5))
    for (index_t y = 0; y < n; y += std::max<index_t>(1, n / 5))
      for (index_t z = 0; z < n; z += std::max<index_t>(1, n / 5)) {
        const code_t c = code_from_coords(level, {x, y, z});
        EXPECT_EQ(code_level(c), level);
        EXPECT_EQ(code_coords(c), (ivec3{x, y, z}));
      }
}

TEST_P(MortonLevel, NeighborArithmetic) {
  const int level = GetParam();
  if (level == 0) return;
  const index_t n = index_t(1) << level;
  const ivec3 mid{n / 2, n / 2, n / 2};
  const code_t c = code_from_coords(level, mid);
  for (const auto& d : directions()) {
    const ivec3 q = mid + d;
    const bool inside = q.x >= 0 && q.x < n && q.y >= 0 && q.y < n &&
                        q.z >= 0 && q.z < n;
    const auto nb = code_neighbor(c, d);
    ASSERT_EQ(nb.has_value(), inside);
    if (!inside) continue;
    EXPECT_EQ(code_coords(*nb), mid + d);
    // neighbor-of-neighbor in the opposite direction is the original
    const auto back = code_neighbor(*nb, ivec3{-d.x, -d.y, -d.z});
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, c);
  }
}

TEST_P(MortonLevel, BoundaryNeighborsAbsent) {
  const int level = GetParam();
  const code_t corner = code_from_coords(level, {0, 0, 0});
  EXPECT_FALSE(code_neighbor(corner, ivec3{-1, 0, 0}).has_value());
  EXPECT_FALSE(code_neighbor(corner, ivec3{0, -1, -1}).has_value());
  if (level > 0)
    EXPECT_TRUE(code_neighbor(corner, ivec3{1, 1, 1}).has_value());
  else
    EXPECT_FALSE(code_neighbor(corner, ivec3{1, 1, 1}).has_value());
}

INSTANTIATE_TEST_SUITE_P(Levels, MortonLevel, testing::Values(0, 1, 2, 3, 5, 8));

TEST(Morton, AncestorRelation) {
  const code_t c = code_child(code_child(code_child(root_code, 3), 5), 7);
  EXPECT_TRUE(code_is_ancestor(root_code, c));
  EXPECT_TRUE(code_is_ancestor(code_parent(c), c));
  EXPECT_TRUE(code_is_ancestor(c, c));
  EXPECT_FALSE(code_is_ancestor(c, code_parent(c)));
  const code_t sibling = code_child(code_parent(c), (code_octant(c) + 1) % 8);
  EXPECT_FALSE(code_is_ancestor(sibling, c));
}

TEST(Directions, CountAndUniqueness) {
  const auto& dirs = directions();
  EXPECT_EQ(dirs.size(), 26u);
  for (std::size_t i = 0; i < dirs.size(); ++i) {
    // nonzero
    EXPECT_FALSE(dirs[i] == (ivec3{0, 0, 0}));
    for (std::size_t j = i + 1; j < dirs.size(); ++j)
      EXPECT_FALSE(dirs[i] == dirs[j]);
  }
}

TEST(Directions, FacesFirst) {
  for (int d = 0; d < 6; ++d) {
    const ivec3 v = directions()[d];
    const int nz = (v.x != 0) + (v.y != 0) + (v.z != 0);
    EXPECT_EQ(nz, 1);
    EXPECT_TRUE(dir_is_face(d));
  }
  for (int d = 6; d < 26; ++d) EXPECT_FALSE(dir_is_face(d));
}

TEST(Directions, OppositeIsInvolution) {
  for (int d = 0; d < NNEIGHBOR; ++d) {
    const int o = dir_opposite(d);
    EXPECT_EQ(dir_opposite(o), d);
    const ivec3 v = directions()[d], w = directions()[o];
    EXPECT_EQ(v + w, (ivec3{0, 0, 0}));
  }
}

TEST(Directions, IndexRoundTrip) {
  for (int d = 0; d < NNEIGHBOR; ++d)
    EXPECT_EQ(dir_index(directions()[d]), d);
}

}  // namespace
}  // namespace octo::tree
