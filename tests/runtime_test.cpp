#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "amt/future.hpp"
#include "amt/runtime.hpp"
#include "amt/sync.hpp"

namespace octo::amt {
namespace {

TEST(Runtime, RunsPostedTask) {
  runtime rt(2);
  event done;
  rt.post([&] { done.set(); });
  done.wait(rt);
  EXPECT_TRUE(done.is_set());
}

TEST(Runtime, Concurrency) {
  runtime rt(3);
  EXPECT_EQ(rt.concurrency(), 3u);
}

TEST(Runtime, ManyTasksAllExecute) {
  runtime rt(4);
  constexpr int N = 5000;
  std::atomic<int> count{0};
  latch l(N);
  for (int i = 0; i < N; ++i) {
    rt.post([&] {
      count.fetch_add(1, std::memory_order_relaxed);
      l.count_down();
    });
  }
  l.wait(rt);
  EXPECT_EQ(count.load(), N);
}

TEST(Runtime, NestedSpawnFromWorker) {
  runtime rt(2);
  std::atomic<int> count{0};
  latch l(1 + 10);
  rt.post([&] {
    // Note: this task may execute on a worker thread or on the external
    // thread helping via latch::wait — both are valid executions.
    for (int i = 0; i < 10; ++i) {
      rt.post([&] {
        count.fetch_add(1);
        l.count_down();
      });
    }
    l.count_down();
  });
  l.wait(rt);
  EXPECT_EQ(count.load(), 10);
}

TEST(Runtime, ExternalThreadIsNotWorker) {
  runtime rt(1);
  EXPECT_FALSE(rt.on_worker_thread());
  EXPECT_EQ(rt.worker_index(), -1);
}

TEST(Runtime, HelpingWaitAvoidsDeadlockOnOneWorker) {
  // A worker blocking on a future whose producer is behind it in the queue
  // would deadlock a naive pool; the helping wait must run it.
  runtime rt(1);
  auto outer = async(
      [&] {
        auto inner = async([] { return 7; }, rt);
        return inner.get(rt) + 1;
      },
      rt);
  EXPECT_EQ(outer.get(rt), 8);
}

TEST(Runtime, DeeplyNestedWaits) {
  runtime rt(1);
  // 20 levels of nested async+get on a single worker.
  std::function<int(int)> nest = [&](int depth) -> int {
    if (depth == 0) return 1;
    auto f = async([&nest, depth] { return nest(depth - 1) + 1; }, rt);
    return f.get(rt);
  };
  EXPECT_EQ(nest(20), 21);
}

TEST(Runtime, StatsCountTasks) {
  runtime rt(2);
  const auto before = rt.stats();
  latch l(100);
  for (int i = 0; i < 100; ++i) rt.post([&] { l.count_down(); });
  l.wait(rt);
  const auto after = rt.stats();
  EXPECT_GE(after.tasks_executed - before.tasks_executed, 100u);
  EXPECT_GE(after.external_posts, 100u);
}

TEST(Runtime, GlobalOverride) {
  runtime rt(2);
  {
    scoped_global_runtime guard(rt);
    EXPECT_EQ(&runtime::global(), &rt);
  }
  EXPECT_NE(&runtime::global(), &rt);
}

TEST(Runtime, TryRunOneFromExternalThread) {
  runtime rt(1);
  // Stall the single worker so the external thread can win the race.
  event release;
  rt.post([&] { release.wait(rt); });
  std::atomic<bool> ran{false};
  rt.post([&] { ran.store(true); });
  // The external thread helps: eventually executes the second task (or the
  // worker does after release).
  release.set();
  while (!ran.load()) {
    rt.try_run_one();
    std::this_thread::yield();
  }
  EXPECT_TRUE(ran.load());
}

TEST(Runtime, DestructorDrainsCleanly) {
  std::atomic<int> executed{0};
  {
    runtime rt(2);
    latch l(50);
    for (int i = 0; i < 50; ++i)
      rt.post([&] {
        executed.fetch_add(1);
        l.count_down();
      });
    l.wait(rt);
  }  // destructor joins workers
  EXPECT_EQ(executed.load(), 50);
}

}  // namespace
}  // namespace octo::amt
