/// Critical-path extraction over recorded task graphs (apex/dag.hpp +
/// apex/critical_path.hpp): hand-built DAGs with known longest chains,
/// tie-breaking determinism, exception-carrying nodes, and a live
/// recording of a real amt::dataflow graph.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "amt/future.hpp"
#include "amt/runtime.hpp"
#include "apex/critical_path.hpp"
#include "apex/dag.hpp"

namespace {

using namespace octo;
using apex::dag_node;
using apex::graph_profile;

dag_node make_node(std::uint32_t id, const char* cls, std::uint64_t start_ns,
                   std::uint64_t dur_ns, std::vector<std::uint32_t> deps,
                   std::int32_t worker = 0, bool failed = false) {
  dag_node n;
  n.cls = cls;
  n.id = id;
  n.ready_ns = start_ns;
  n.start_ns = start_ns;
  n.end_ns = start_ns + dur_ns;
  n.worker = worker;
  n.failed = failed;
  n.deps = std::move(deps);
  return n;
}

/// The 10-node reference DAG.  Durations and edges chosen so the longest
/// duration-weighted chain is 0 -> 2 -> 4 -> 6 -> 8 -> 9 with total 125:
///
///   dist: 0:10  1:5  2:30  3:10  4:60  5:40  6:100  7:45  8:115  9:125
graph_profile reference_dag() {
  graph_profile g;
  g.nodes.push_back(make_node(0, "hydro-RK", 0, 10, {}));
  g.nodes.push_back(make_node(1, "copy", 100, 5, {}, 1));
  g.nodes.push_back(make_node(2, "M2L", 200, 20, {0, 1}));
  g.nodes.push_back(make_node(3, "copy", 300, 5, {1}, 1));
  g.nodes.push_back(make_node(4, "M2L", 400, 30, {2}));
  g.nodes.push_back(make_node(5, "prolong", 500, 10, {2, 3}, 1));
  g.nodes.push_back(make_node(6, "M2L", 600, 40, {4}));
  g.nodes.push_back(make_node(7, "copy", 700, 5, {5}, 1));
  g.nodes.push_back(make_node(8, "hydro-RK", 800, 15, {6, 7}));
  g.nodes.push_back(make_node(9, "dt-reduce", 900, 10, {8}, 1));
  return g;
}

TEST(CriticalPath, EmptyProfile) {
  const auto r = apex::analyze_critical_path(graph_profile{});
  EXPECT_TRUE(r.path.empty());
  EXPECT_EQ(r.length_ns, 0u);
  EXPECT_EQ(r.makespan_ns, 0u);
  EXPECT_EQ(r.nodes, 0u);
  EXPECT_DOUBLE_EQ(r.crit_path_frac(), 0);
}

TEST(CriticalPath, KnownLongestChain) {
  const auto r = apex::analyze_critical_path(reference_dag());
  EXPECT_EQ(r.nodes, 10u);
  EXPECT_EQ(r.edges, 11u);
  EXPECT_EQ(r.length_ns, 125u);
  EXPECT_EQ(r.path, (std::vector<std::uint32_t>{0, 2, 4, 6, 8, 9}));
  // makespan: max end (910) - min ready (0).
  EXPECT_EQ(r.makespan_ns, 910u);
  EXPECT_EQ(r.longest_task_ns, 40u);
  EXPECT_GE(r.length_ns, r.longest_task_ns);
  EXPECT_LE(r.length_ns, r.makespan_ns);
  EXPECT_FALSE(r.path_failed);

  // Kernel-class attribution along the path: M2L 20+30+40, hydro 10+15,
  // dt-reduce 10.
  EXPECT_EQ(r.class_ns.at("M2L"), 90u);
  EXPECT_EQ(r.class_ns.at("hydro-RK"), 25u);
  EXPECT_EQ(r.class_ns.at("dt-reduce"), 10u);
  EXPECT_EQ(r.class_ns.count("copy"), 0u);  // not on the path
  // Whole-graph totals include everything.
  EXPECT_EQ(r.class_total_ns.at("copy"), 15u);
  EXPECT_EQ(r.class_total_ns.at("prolong"), 10u);

  // Worker loads: worker 0 ran 10+20+30+40+15 = 115, worker 1 ran
  // 5+5+10+5+10 = 35; imbalance = (115 - 75) / 115.
  ASSERT_EQ(r.workers.size(), 2u);
  EXPECT_EQ(r.workers[0].worker, 0);
  EXPECT_EQ(r.workers[0].busy_ns, 115u);
  EXPECT_EQ(r.workers[1].busy_ns, 35u);
  EXPECT_NEAR(r.imbalance, (115.0 - 75.0) / 115.0, 1e-12);
}

TEST(CriticalPath, TieBreaksDeterministically) {
  // Two equal-length chains into one sink: 0 -> 2 and 1 -> 2, both
  // predecessors at dist 10.  The lower node id must win, every time.
  graph_profile g;
  g.nodes.push_back(make_node(0, "a", 0, 10, {}));
  g.nodes.push_back(make_node(1, "b", 0, 10, {}));
  g.nodes.push_back(make_node(2, "c", 20, 5, {0, 1}));
  const auto r1 = apex::analyze_critical_path(g);
  EXPECT_EQ(r1.path, (std::vector<std::uint32_t>{0, 2}));
  EXPECT_EQ(r1.length_ns, 15u);

  // Same graph, dependency list order reversed: still node 0.
  g.nodes[2].deps = {1, 0};
  const auto r2 = apex::analyze_critical_path(g);
  EXPECT_EQ(r2.path, (std::vector<std::uint32_t>{0, 2}));

  // Two disconnected equal sinks: the lower-id sink wins.
  graph_profile g2;
  g2.nodes.push_back(make_node(0, "a", 0, 10, {}));
  g2.nodes.push_back(make_node(1, "b", 0, 10, {}));
  const auto r3 = apex::analyze_critical_path(g2);
  EXPECT_EQ(r3.path, (std::vector<std::uint32_t>{0}));
}

TEST(CriticalPath, ExceptionCarryingNode) {
  // Node 1 resolved with an exception: zero duration (end == start), but
  // it stays in the graph and flags the path when it lies on it.
  graph_profile g;
  g.nodes.push_back(make_node(0, "a", 0, 10, {}));
  g.nodes.push_back(make_node(1, "boom", 10, 0, {0}, 0, true));
  g.nodes.push_back(make_node(2, "c", 20, 10, {1}));
  const auto r = apex::analyze_critical_path(g);
  EXPECT_EQ(r.path, (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_EQ(r.length_ns, 20u);
  EXPECT_TRUE(r.path_failed);
}

TEST(CriticalPath, CountersAndReportDoNotThrow) {
  const auto r = apex::analyze_critical_path(reference_dag());
  apex::export_critical_path_counters(r);
  std::ostringstream os;
  apex::print_critical_path(os, r);
  EXPECT_NE(os.str().find("M2L"), std::string::npos);
  EXPECT_NE(os.str().find("critical path"), std::string::npos);
}

TEST(CriticalPath, LiveDataflowRecording) {
  amt::runtime rt(4);
  amt::scoped_global_runtime guard(rt);
  using sf = amt::shared_future<void>;

  auto& rec = apex::dag_recorder::instance();
  rec.begin_step();
  ASSERT_TRUE(apex::dag_recorder::enabled());

  // A diamond with a serial tail: a -> {b, c} -> join -> d.
  std::atomic<int> ran{0};
  auto a = sf(amt::dataflow("seed", [&] { ++ran; }, {}, rt));
  auto b = sf(amt::dataflow("left", [&] { ++ran; }, {a}, rt));
  auto c = sf(amt::dataflow("right", [&] { ++ran; }, {a}, rt));
  auto d = sf(amt::dataflow("tail", [&] { ++ran; }, {b, c}, rt));
  std::vector<sf> all{a, b, c, d};
  amt::get_all(all, rt);

  const auto g = rec.end_step();
  EXPECT_FALSE(apex::dag_recorder::enabled());
  ASSERT_EQ(g.nodes.size(), 4u);
  EXPECT_EQ(ran.load(), 4);

  // Edges resolved by shared-state identity: b and c depend on a (id 0),
  // d on both b and c.
  EXPECT_EQ(g.nodes[1].deps, (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(g.nodes[2].deps, (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(g.nodes[3].deps, (std::vector<std::uint32_t>{1, 2}));

  for (const auto& n : g.nodes) {
    EXPECT_GE(n.start_ns, n.ready_ns) << "node " << n.id;
    EXPECT_GE(n.end_ns, n.start_ns) << "node " << n.id;
    // Ran on a pool worker, or on the helping (off-pool) test thread.
    EXPECT_GE(n.worker, -1) << "node " << n.id;
    EXPECT_FALSE(n.failed);
  }

  const auto r = apex::analyze_critical_path(g);
  EXPECT_EQ(r.nodes, 4u);
  EXPECT_EQ(r.edges, 4u);
  EXPECT_EQ(r.path.size(), 3u);  // seed -> (left|right) -> tail
  EXPECT_EQ(r.path.front(), 0u);
  EXPECT_EQ(r.path.back(), 3u);
  EXPECT_GE(r.length_ns, r.longest_task_ns);
  EXPECT_LE(r.length_ns, r.makespan_ns);
  EXPECT_EQ(r.class_total_ns.count("seed"), 1u);
  EXPECT_EQ(r.class_total_ns.count("tail"), 1u);
}

TEST(CriticalPath, FailedTaskRecordedAndFlagged) {
  amt::runtime rt(2);
  amt::scoped_global_runtime guard(rt);
  using sf = amt::shared_future<void>;

  auto& rec = apex::dag_recorder::instance();
  rec.begin_step();
  auto a = sf(amt::dataflow("ok", [] {}, {}, rt));
  auto b = sf(amt::dataflow("throws",
                            [] { throw std::runtime_error("boom"); }, {a},
                            rt));
  auto c = sf(amt::dataflow("downstream", [] {}, {b}, rt));
  std::vector<sf> all{a, b, c};
  EXPECT_THROW(amt::get_all(all, rt), std::runtime_error);

  const auto g = rec.end_step();
  ASSERT_EQ(g.nodes.size(), 3u);
  EXPECT_FALSE(g.nodes[0].failed);
  EXPECT_TRUE(g.nodes[1].failed);
  EXPECT_TRUE(g.nodes[2].failed);  // dependency error propagated
  // The downstream body never ran: zero duration, still analyzable.
  EXPECT_EQ(g.nodes[2].end_ns, g.nodes[2].start_ns);
  const auto r = apex::analyze_critical_path(g);
  EXPECT_TRUE(r.path_failed);
  EXPECT_LE(r.length_ns, r.makespan_ns);
}

TEST(CriticalPath, RecorderOffIsInvisible) {
  amt::runtime rt(2);
  amt::scoped_global_runtime guard(rt);
  EXPECT_FALSE(apex::dag_recorder::enabled());
  using sf = amt::shared_future<void>;
  auto a = sf(amt::dataflow("x", [] {}, {}, rt));
  std::vector<sf> all{a};
  amt::get_all(all, rt);
  // A begin/end bracket with no tasks in between stays empty.
  apex::dag_recorder::instance().begin_step();
  const auto g = apex::dag_recorder::instance().end_step();
  EXPECT_TRUE(g.empty());
}

}  // namespace
