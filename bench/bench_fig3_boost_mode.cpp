/// Reproduces Fig. 3: node-level scaling on a single Fugaku node, with the
/// default 1.8 GHz clock and the 2.2 GHz boost mode.
/// Paper finding: "the higher clock speed using the boost mode resulted in
/// a marginal performance improvement."

#include "fig_common.hpp"

int main() {
  using namespace octo;
  bench::header("Fig. 3 — Fugaku node-level scaling, boost vs default clock",
                "boost (2.2 GHz) gives only a marginal gain over 1.8 GHz; "
                "throughput scales with cores until the 48-core node is "
                "full");

  auto sc = scen::rotating_star();
  const auto topo = sc.make_topology(5);
  const auto m = machine::fugaku();

  table t({"cores", "cells/s @1.8GHz", "cells/s @2.2GHz (boost)",
           "boost gain"});
  double gain48 = 0, base1 = 0, base48 = 0;
  for (const int cores : {1, 2, 4, 8, 16, 24, 32, 48}) {
    des::workload_options normal;
    des::workload_options boost;
    boost.boost = true;
    const auto rn = des::run_experiment(topo, m, 1, normal, cores);
    const auto rb = des::run_experiment(topo, m, 1, boost, cores);
    const double gain = rb.cells_per_sec / rn.cells_per_sec;
    t.add_row({table::fmt(static_cast<long long>(cores)),
               table::fmt(rn.cells_per_sec), table::fmt(rb.cells_per_sec),
               table::fmt(gain)});
    if (cores == 1) base1 = rn.cells_per_sec;
    if (cores == 48) {
      gain48 = gain;
      base48 = rn.cells_per_sec;
    }
  }
  t.print(std::cout);

  bench::check(gain48 > 1.0 && gain48 < 1.12,
               "boost gain is positive but marginal (<12%)");
  bench::check(base48 / base1 > 20,
               "near-linear node-level core scaling (48 cores > 20x 1 core)");
  return 0;
}
