/// Ablation: GPU work aggregation (the paper's reference [9], "From
/// task-based GPU work aggregation to stellar mergers": Octo-Tiger batches
/// several sub-grid kernels into one GPU launch via cppuddle).  We sweep
/// the aggregation factor on the Perlmutter model: with no aggregation the
/// per-launch overhead of thousands of tiny sub-grid kernels throttles the
/// GPUs; aggregation amortizes it.

#include "fig_common.hpp"

int main() {
  using namespace octo;
  bench::header(
      "Ablation — GPU kernel-launch aggregation (Perlmutter, DWD level 6)",
      "tiny per-sub-grid kernels pay launch overhead; aggregating several "
      "launches into one (ref. [9]) recovers most of the loss");

  auto sc = scen::dwd();
  const auto topo = sc.make_topology(6);

  table t({"aggregation", "cells/s @4 nodes", "cells/s @32 nodes",
           "vs agg=8 (4 nodes)"});
  double ref4 = 0;
  std::vector<std::array<double, 2>> rows;
  const std::vector<int> aggs = {1, 2, 4, 8, 16, 32};
  for (const int agg : aggs) {
    auto m = machine::perlmutter();
    for (auto& g : m.node.gpus) g.aggregation = agg;
    des::workload_options opt;
    const auto r4 = des::run_experiment(topo, m, 4, opt);
    const auto r32 = des::run_experiment(topo, m, 32, opt);
    rows.push_back({r4.cells_per_sec, r32.cells_per_sec});
    if (agg == 8) ref4 = r4.cells_per_sec;
  }
  for (std::size_t i = 0; i < aggs.size(); ++i) {
    t.add_row({table::fmt(static_cast<long long>(aggs[i])),
               table::fmt(rows[i][0]), table::fmt(rows[i][1]),
               table::fmt(rows[i][0] / ref4)});
  }
  t.print(std::cout);

  bench::check(rows.back()[0] > rows.front()[0],
               "aggregation improves GPU throughput");
  std::printf("reading: the DWD tree's ~10k kernels/stage at 8 us launch "
              "overhead cost ~%.0f ms un-aggregated — visible directly in "
              "the makespan.\n",
              10844 * 3 * 8e-3);
  return 0;
}
