/// Microbenchmarks of the explicit SIMD layer: the same kernel bodies
/// compiled against the scalar ABI and the vector ABI.  These measured
/// speedups ground the machine model's `simd_speedup` (Fig. 7).

#include <benchmark/benchmark.h>

#include <vector>

#include "common/random.hpp"
#include "gravity/kernels.hpp"
#include "simd/simd.hpp"

namespace {

using octo::real;

template <typename P>
void axpy_kernel(benchmark::State& state) {
  const int n = 4096;
  std::vector<real> x(n + 8), y(n + 8), z(n + 8);
  octo::xoshiro256 rng(1);
  for (auto& v : x) v = rng.uniform();
  for (auto& v : y) v = rng.uniform();
  for (auto _ : state) {
    for (int i = 0; i < n; i += P::size()) {
      P a, b;
      a.copy_from(x.data() + i);
      b.copy_from(y.data() + i);
      const P r = fma(P(1.5), a, b);
      r.copy_to(z.data() + i);
    }
    benchmark::DoNotOptimize(z.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

template <typename P>
void rsqrt_kernel(benchmark::State& state) {
  // the gravity kernels' hot pattern: r^2 -> 1/r, 1/r^3, 1/r^5
  const int n = 4096;
  std::vector<real> x(n + 8), out(n + 8);
  octo::xoshiro256 rng(2);
  for (auto& v : x) v = rng.uniform(0.1, 4.0);
  for (auto _ : state) {
    for (int i = 0; i < n; i += P::size()) {
      P r2;
      r2.copy_from(x.data() + i);
      const P rinv = P(1) / sqrt(r2);
      const P rinv3 = rinv * rinv * rinv;
      const P rinv5 = rinv3 * rinv * rinv;
      (rinv + rinv3 + rinv5).copy_to(out.data() + i);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

template <typename P>
void m2l_kernel(benchmark::State& state) {
  // one Multipole-kernel interaction per lane-pack
  using namespace octo::gravity;
  const int n = 1024;
  std::vector<real> rx(n + 8), ry(n + 8), rz(n + 8), m(n + 8);
  octo::xoshiro256 rng(3);
  for (int i = 0; i < n; ++i) {
    rx[i] = rng.uniform(0.3, 1.0);
    ry[i] = rng.uniform(0.3, 1.0);
    rz[i] = rng.uniform(0.3, 1.0);
    m[i] = rng.uniform();
  }
  for (auto _ : state) {
    pack_expansion<P> acc;
    for (int i = 0; i < n; i += P::size()) {
      P x, y, z, mm;
      x.copy_from(rx.data() + i);
      y.copy_from(ry.data() + i);
      z.copy_from(rz.data() + i);
      mm.copy_from(m.data() + i);
      pack_derivs<P> d;
      compute_derivs(x, y, z, 1.0, d);
      pack_multipole<P> src;
      src.m = mm;
      src.cx = x;
      src.cy = y;
      src.cz = z;
      for (auto& q : src.q) q = mm;
      for (auto& o : src.o) o = mm;
      m2l_pack<P, true>(src, d, acc);
    }
    benchmark::DoNotOptimize(&acc);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

using scalar_pack = octo::simd<real, octo::simd_abi::scalar>;
using vector_pack = octo::simd<real, octo::simd_abi::native<real>>;

}  // namespace

BENCHMARK(axpy_kernel<scalar_pack>)->Name("axpy/scalar");
BENCHMARK(axpy_kernel<vector_pack>)->Name("axpy/vector");
BENCHMARK(rsqrt_kernel<scalar_pack>)->Name("rsqrt/scalar");
BENCHMARK(rsqrt_kernel<vector_pack>)->Name("rsqrt/vector");
BENCHMARK(m2l_kernel<scalar_pack>)->Name("m2l/scalar");
BENCHMARK(m2l_kernel<vector_pack>)->Name("m2l/vector");

BENCHMARK_MAIN();
