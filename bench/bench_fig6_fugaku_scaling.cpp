/// Reproduces Fig. 6: distributed scaling of the rotating-star problem on
/// Supercomputer Fugaku with SVE vectorization and the communication
/// optimization enabled, for refinement level 5 (2.5M cells, 1-256 nodes),
/// level 6 (14.2M cells, 128-1024), and level 7 (88.6M cells, 400-1024).
/// Paper findings: L5 scales to ~64 nodes before running out of work;
/// L6 to ~512; L7 still scales at 1024.

#include <map>

#include "amt/runtime.hpp"
#include "dist/cluster.hpp"
#include "fig_common.hpp"

namespace {

/// Measured sidebar: the distributed step in barrier vs dataflow mode
/// (OCTO_STEP_MODE toggle).  Scaling in the main table flattens where
/// cores starve waiting at phase barriers; the dependency-driven step
/// removes those barriers, visible here as strictly lower worker idle
/// time on a real 4-locality run.
void measured_dataflow_mode() {
  using namespace octo;
  std::printf("\nmeasured: barrier vs dataflow distributed step "
              "(4 localities, level 3, 4 workers):\n");
  auto sc = scen::rotating_star();
  table t({"step mode", "cells/s", "worker idle [ms]", "idle fraction"});
  double idle_ms[2] = {0, 0};
  int mi = 0;
  for (const auto mode : {app::step_mode::barrier, app::step_mode::dataflow}) {
    amt::runtime rt(4);
    amt::scoped_global_runtime guard(rt);
    dist::dist_options o;
    o.num_localities = 4;
    o.sim.max_level = 3;
    o.sim.mode = mode;
    dist::cluster cl(sc, o);
    cl.initialize();
    cl.step();  // warm-up
    const auto s0 = rt.stats();
    const int steps = 4;
    double wall = 0, cells = 0;
    for (int i = 0; i < steps; ++i) {
      cl.step();
      wall += cl.last_step_metrics().step_seconds;
      cells += static_cast<double>(cl.last_step_metrics().cells);
    }
    const auto s1 = rt.stats();
    idle_ms[mi] = static_cast<double>(s1.idle_ns - s0.idle_ns) * 1e-6;
    const double frac = wall > 0 ? idle_ms[mi] * 1e-3 / (wall * 4) : 0;
    t.add_row({mi == 0 ? "barrier" : "dataflow",
               table::fmt(wall > 0 ? cells / wall : 0),
               table::fmt(idle_ms[mi]), table::fmt(frac)});
    ++mi;
  }
  t.print(std::cout);
  bench::check(idle_ms[1] < idle_ms[0],
               "dataflow mode strictly reduces worker idle time across "
               "localities");
}

}  // namespace

int main() {
  using namespace octo;
  bench::header(
      "Fig. 6 — rotating star scaling on Fugaku (levels 5/6/7)",
      "level 5 scales to ~64 nodes, level 6 to ~512, level 7 keeps scaling "
      "at 1024 (enough work per core)");

  auto sc = scen::rotating_star();
  const auto m = machine::fugaku();
  des::workload_options opt;  // SVE on, comm-opt on (paper's §VI-D config)

  struct series_def {
    int level;
    std::vector<int> nodes;
  };
  const std::vector<series_def> defs = {
      {5, {1, 2, 4, 8, 16, 32, 64, 128, 256}},
      {6, {128, 256, 512, 1024}},
      {7, {400, 512, 1024}},
  };

  std::map<int, std::map<int, double>> cells_per_sec;
  for (const auto& def : defs) {
    const auto topo = sc.make_topology(def.level);
    std::printf("level %d: %lld sub-grids, %.3g cells (paper: %s)\n",
                def.level, static_cast<long long>(topo.num_leaves()),
                static_cast<double>(topo.num_cells()),
                def.level == 5   ? "2.5M"
                : def.level == 6 ? "14.2M"
                                 : "88.6M");
    for (const int nodes : def.nodes) {
      const auto r = des::run_experiment(topo, m, nodes, opt);
      cells_per_sec[def.level][nodes] = r.cells_per_sec;
    }
  }

  std::printf("\n");
  table t({"nodes", "level 5 cells/s", "level 6 cells/s", "level 7 cells/s"});
  for (const int nodes : {1, 2, 4, 8, 16, 32, 64, 128, 256, 400, 512, 1024}) {
    const auto cell = [&](int lvl) -> std::string {
      const auto& s = cells_per_sec[lvl];
      const auto it = s.find(nodes);
      return it == s.end() ? "-" : table::fmt(it->second);
    };
    t.add_row({table::fmt(static_cast<long long>(nodes)), cell(5), cell(6),
               cell(7)});
  }
  t.print(std::cout);

  // Shape checks.
  const auto& l5 = cells_per_sec[5];
  const auto& l6 = cells_per_sec[6];
  const auto& l7 = cells_per_sec[7];
  bench::check(l5.at(64) / l5.at(1) > 25,
               "level 5 scales well to 64 nodes (>25x of 1 node)");
  bench::check(l5.at(256) / l5.at(64) < 2.5,
               "level 5 runs out of work beyond ~64 nodes");
  bench::check(l6.at(512) / l6.at(128) > 1.8,
               "level 6 still scales from 128 to 512 nodes (2x over 4x nodes)");
  bench::check(l6.at(1024) / l6.at(512) < 1.7,
               "level 6 flattens toward 1024 nodes");
  bench::check(l7.at(1024) / l7.at(400) > 1.8,
               "level 7 has enough work to keep scaling to 1024 nodes");

  measured_dataflow_mode();
  return 0;
}
