/// Overheads of the AMT runtime primitives: task spawn/execute round trips,
/// future continuation chains, channels and work stealing.  These are the
/// costs the paper's fine-grained kernel strategy (§IV-B) must amortize.

#include <benchmark/benchmark.h>

#include <atomic>

#include "amt/channel.hpp"
#include "amt/future.hpp"
#include "amt/sync.hpp"

namespace {

using namespace octo;

void task_spawn_execute(benchmark::State& state) {
  amt::runtime rt(2);
  for (auto _ : state) {
    amt::latch l(100);
    for (int i = 0; i < 100; ++i) rt.post([&l] { l.count_down(); });
    l.wait(rt);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}

void async_get_roundtrip(benchmark::State& state) {
  amt::runtime rt(2);
  for (auto _ : state) {
    auto f = amt::async([] { return 1; }, rt);
    benchmark::DoNotOptimize(f.get(rt));
  }
}

void future_then_chain(benchmark::State& state) {
  amt::runtime rt(2);
  for (auto _ : state) {
    auto f = amt::make_ready_future(0);
    for (int i = 0; i < 16; ++i)
      f = f.then_inline([](int v) { return v + 1; }, rt);
    benchmark::DoNotOptimize(f.get(rt));
  }
  state.SetItemsProcessed(state.iterations() * 16);
}

void when_all_fanin(benchmark::State& state) {
  amt::runtime rt(2);
  for (auto _ : state) {
    std::vector<amt::future<int>> futs;
    futs.reserve(64);
    for (int i = 0; i < 64; ++i)
      futs.push_back(amt::async([i] { return i; }, rt));
    amt::when_all(std::move(futs), rt).get(rt);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}

void channel_ping(benchmark::State& state) {
  amt::runtime rt(2);
  amt::channel<int> ch;
  for (auto _ : state) {
    ch.send(1);
    benchmark::DoNotOptimize(ch.receive().get(rt));
  }
}

void ws_deque_push_pop(benchmark::State& state) {
  amt::ws_deque<int> dq;
  int item = 7;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) dq.push(&item);
    for (int i = 0; i < 64; ++i) benchmark::DoNotOptimize(dq.pop());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}

}  // namespace

BENCHMARK(task_spawn_execute);
BENCHMARK(async_get_roundtrip);
BENCHMARK(future_then_chain);
BENCHMARK(when_all_fanin);
BENCHMARK(channel_ping);
BENCHMARK(ws_deque_push_pop);

BENCHMARK_MAIN();
