/// Ablation (DESIGN.md §5.1): how many tasks should one Multipole-kernel
/// launch be split into?  The paper compares 1 vs 16 (Fig. 9); here we
/// sweep the chunk count across node counts to expose the full trade-off:
/// splitting costs per-task overhead when work is plentiful and buys
/// utilization when cores starve during tree traversals.

#include "fig_common.hpp"

int main() {
  using namespace octo;
  bench::header(
      "Ablation — Multipole-kernel chunk count sweep (Ookami, level 5)",
      "chunks=1 is optimal with ample work; larger chunk counts win in the "
      "starved regime; extreme splitting eventually flattens out");

  auto sc = scen::rotating_star();
  const auto topo = sc.make_topology(5);
  const auto m = machine::ookami();

  const std::vector<int> chunk_axis = {1, 2, 4, 8, 16, 32, 64};
  table t({"nodes", "chunks=1", "chunks=2", "chunks=4", "chunks=8",
           "chunks=16", "chunks=32", "chunks=64", "best"});
  for (const int nodes : {1, 8, 32, 128}) {
    std::vector<std::string> row{table::fmt(static_cast<long long>(nodes))};
    double best = 0;
    int best_chunks = 1;
    for (const int chunks : chunk_axis) {
      des::workload_options opt;
      opt.m2l_chunks = chunks;
      const auto r = des::run_experiment(topo, m, nodes, opt);
      row.push_back(table::fmt(r.cells_per_sec));
      if (r.cells_per_sec > best) {
        best = r.cells_per_sec;
        best_chunks = chunks;
      }
    }
    row.push_back(table::fmt(static_cast<long long>(best_chunks)));
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  std::printf("\nreading: the optimum moves from 1 toward 16+ as sub-grids "
              "per node drop below the core count — the paper's rationale "
              "for making the count a per-launch parameter.\n");
  return 0;
}
