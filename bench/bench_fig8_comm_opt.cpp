/// Reproduces Fig. 8: influence of the same-locality communication
/// optimization (§VII-B: direct memory access instead of HPX actions and
/// temporary buffers, with promise/future up-to-date notification).
/// Paper finding: benefit at 1-4 nodes, break-even around 8, slightly
/// worse at larger node counts (the bookkeeping outweighs the shrinking
/// local savings).

#include "common/stopwatch.hpp"
#include "dist/cluster.hpp"
#include "fig_common.hpp"

namespace {

/// Measured counters: run the real in-process cluster for one step and
/// report its exchange_stats — the serialized-vs-direct slab traffic the
/// DES model above abstracts.
void measured_counters() {
  using namespace octo;
  std::printf("\nmeasured ghost-slab traffic (in-process cluster, level 2, "
              "4 localities, 1 step):\n");
  table t({"local_opt", "direct slabs", "local serialized", "remote msgs",
           "bytes serialized"});
  dist::exchange_stats on_stats, off_stats;
  for (const bool local_opt : {true, false}) {
    amt::runtime rt(4);
    amt::scoped_global_runtime guard(rt);
    dist::dist_options opt;
    opt.num_localities = 4;
    opt.local_optimization = local_opt;
    opt.sim.max_level = 2;
    dist::cluster cl(scen::rotating_star(), opt);
    cl.initialize();
    cl.step();
    const auto& st = cl.stats();
    (local_opt ? on_stats : off_stats) = st;
    t.add_row({local_opt ? "ON" : "OFF",
               table::fmt(static_cast<long long>(st.local_direct)),
               table::fmt(static_cast<long long>(st.local_serialized)),
               table::fmt(static_cast<long long>(st.remote_messages)),
               table::fmt(static_cast<long long>(st.bytes_serialized))});
  }
  t.print(std::cout);
  bench::check(on_stats.local_direct > 0 && off_stats.local_direct == 0,
               "ON passes same-locality slabs as pointer tokens");
  bench::check(on_stats.bytes_serialized < off_stats.bytes_serialized,
               "ON serializes fewer bytes than OFF");
  bench::apex_report("the measured cluster runs");
}

/// Transport-overhead column: what the reliability layer (sequencing, acks,
/// retry bookkeeping — dist/transport.hpp) costs on a fault-free network
/// versus the seed's bare channels, with every slab on the serialized path.
void transport_overhead() {
  using namespace octo;
  std::printf("\nreliable-transport overhead vs bare channels (level 2, "
              "4 localities, serialized path, 1 step, no faults):\n");
  table t({"transport", "step s", "messages", "frames", "hdr bytes",
           "hdr/payload %"});
  double bare_s = 0, reliable_s = 0;
  std::uint64_t hdr = 0, payload = 0;
  for (const bool reliable : {false, true}) {
    amt::runtime rt(4);
    amt::scoped_global_runtime guard(rt);
    dist::dist_options opt;
    opt.num_localities = 4;
    opt.local_optimization = false;  // every slab through the wire path
    opt.reliable_transport = reliable;
    opt.sim.max_level = 2;
    dist::cluster cl(scen::rotating_star(), opt);
    cl.initialize();
    const stopwatch w;
    cl.step();
    const double s = w.seconds();
    (reliable ? reliable_s : bare_s) = s;
    const auto ts = cl.transport_statistics();
    const double pct =
        cl.stats().bytes_serialized == 0
            ? 0
            : 100.0 * static_cast<double>(ts.header_bytes) /
                  static_cast<double>(cl.stats().bytes_serialized);
    if (reliable) {
      hdr = ts.header_bytes;
      payload = cl.stats().bytes_serialized;
    }
    t.add_row({reliable ? "reliable" : "bare", table::fmt(s),
               table::fmt(static_cast<long long>(ts.messages)),
               table::fmt(static_cast<long long>(ts.frames_sent)),
               table::fmt(static_cast<long long>(ts.header_bytes)),
               table::fmt(pct)});
  }
  t.print(std::cout);
  bench::check(hdr > 0, "reliable path accounts seq/ack header traffic");
  bench::check(static_cast<double>(hdr) < 0.05 * static_cast<double>(payload),
               "wire overhead of sequencing+acks stays under 5% of slab "
               "payload");
  std::printf("note: step wall times (bare %.3fs vs reliable %.3fs) bound "
              "the robustness tax; on a fault-free network the reliable "
              "path adds only per-message bookkeeping, no retransmissions\n",
              bare_s, reliable_s);
}

}  // namespace

int main() {
  using namespace octo;
  bench::header(
      "Fig. 8 — local-communication optimization on Ookami (level 5)",
      "benefit when most neighbor pairs are on-locality (small node "
      "counts); break-even near 8-16 nodes; slightly worse beyond as the "
      "up-to-date bookkeeping outweighs the savings");

  auto sc = scen::rotating_star();
  const auto topo = sc.make_topology(5);
  const auto m = machine::ookami();

  table t({"nodes", "cells/s ON", "cells/s OFF", "ON/OFF", "remote frac"});
  double ratio1 = 0, ratio128 = 0;
  for (const int nodes : {1, 2, 4, 8, 16, 32, 64, 128}) {
    des::workload_options on;
    des::workload_options off;
    off.comm_opt = false;
    const auto r_on = des::run_experiment(topo, m, nodes, on);
    const auto r_off = des::run_experiment(topo, m, nodes, off);
    const double ratio = r_on.cells_per_sec / r_off.cells_per_sec;
    const auto part = tree::partition_sfc(topo, nodes);
    t.add_row({table::fmt(static_cast<long long>(nodes)),
               table::fmt(r_on.cells_per_sec),
               table::fmt(r_off.cells_per_sec), table::fmt(ratio),
               table::fmt(tree::remote_link_fraction(topo, part))});
    if (nodes == 1) ratio1 = ratio;
    if (nodes == 128) ratio128 = ratio;
  }
  t.print(std::cout);

  bench::check(ratio1 > 1.005, "clear benefit on one node (all pairs local)");
  bench::check(ratio128 < 1.01,
               "no benefit left at 128 nodes (paper: slightly worse; in our "
               "model idle cores absorb the bookkeeping, so it lands at "
               "break-even)");
  std::printf("note: our SFC partition keeps more locality than "
              "Octo-Tiger's distribution, so the break-even lands at ~16 "
              "nodes instead of the paper's 8 (see EXPERIMENTS.md)\n");

  measured_counters();
  transport_overhead();
  return 0;
}
