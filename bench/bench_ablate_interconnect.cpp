/// Ablation (DESIGN.md §5 / paper §VII-D): how much of the Ookami-vs-Fugaku
/// gap is the interconnect?  Same A64FX node model under Tofu-D,
/// InfiniBand-HDR, and an ideal zero-latency/infinite-bandwidth network.

#include "fig_common.hpp"

int main() {
  using namespace octo;
  bench::header(
      "Ablation — interconnect sensitivity (A64FX nodes, level 5)",
      "Tofu-D vs InfiniBand differ modestly at scale; the ideal network "
      "bounds what any interconnect tuning could recover");

  auto sc = scen::rotating_star();
  const auto topo = sc.make_topology(5);

  auto tofu = machine::fugaku();
  auto ib = machine::fugaku();
  ib.net = machine::ookami().net;
  auto ideal = machine::fugaku();
  ideal.net = {.name = "ideal", .latency_us = 0, .bandwidth_gbs = 1e9,
               .per_message_us = 0};

  des::workload_options opt;
  table t({"nodes", "Tofu-D", "InfiniBand", "ideal net", "ideal/Tofu"});
  for (const int nodes : {4, 16, 64, 256}) {
    const auto rt = des::run_experiment(topo, tofu, nodes, opt);
    const auto ri = des::run_experiment(topo, ib, nodes, opt);
    const auto rx = des::run_experiment(topo, ideal, nodes, opt);
    t.add_row({table::fmt(static_cast<long long>(nodes)),
               table::fmt(rt.cells_per_sec), table::fmt(ri.cells_per_sec),
               table::fmt(rx.cells_per_sec),
               table::fmt(rx.cells_per_sec / rt.cells_per_sec)});
  }
  t.print(std::cout);
  return 0;
}
