/// Per-sub-grid costs of the physics kernels — the measurements behind the
/// machine model's kernel_work calibration (DESIGN.md §4).

#include <benchmark/benchmark.h>

#include "amt/runtime.hpp"
#include "common/random.hpp"
#include "gravity/solver.hpp"
#include "hydro/kernel.hpp"
#include "tree/topology.hpp"

namespace {

using namespace octo;

grid::subgrid random_subgrid(std::uint64_t seed) {
  grid::subgrid u(rvec3{0, 0, 0}, 0.1);
  xoshiro256 rng(seed);
  hydro::ideal_gas gas;
  for (int i = -2; i < 10; ++i)
    for (int j = -2; j < 10; ++j)
      for (int k = -2; k < 10; ++k) {
        const real rho = rng.uniform(0.5, 2.0);
        const real p = rng.uniform(0.5, 2.0);
        u.at(grid::f_rho, i, j, k) = rho;
        u.at(grid::f_sx, i, j, k) = rho * rng.uniform(-0.3, 0.3);
        u.at(grid::f_sy, i, j, k) = rho * rng.uniform(-0.3, 0.3);
        u.at(grid::f_sz, i, j, k) = rho * rng.uniform(-0.3, 0.3);
        u.at(grid::f_egas, i, j, k) = p / (gas.gamma - 1) + rho * 0.1;
        u.at(grid::f_tau, i, j, k) =
            std::pow(p / (gas.gamma - 1), 1 / gas.gamma);
        u.at(grid::f_spc0, i, j, k) = rho;
      }
  return u;
}

void hydro_flux_kernel(benchmark::State& state) {
  const bool simd = state.range(0) != 0;
  auto u = random_subgrid(1);
  hydro::hydro_options opt;
  opt.use_simd = simd;
  hydro::workspace ws;
  std::vector<real> dudt(static_cast<std::size_t>(hydro::dudt_size), 0);
  for (auto _ : state) {
    std::fill(dudt.begin(), dudt.end(), real(0));
    hydro::flux_divergence(u, opt, ws, dudt);
    benchmark::DoNotOptimize(dudt.data());
  }
  state.SetItemsProcessed(state.iterations() * 512);  // cells per sub-grid
}

void gravity_solve(benchmark::State& state) {
  // full FMM on an 8-leaf tree; per-sub-grid cost = time / 9 nodes
  const bool simd = state.range(0) != 0;
  amt::runtime rt(2);
  amt::scoped_global_runtime guard(rt);
  tree::topology topo(1.0, 1,
                      [](int lvl, const rvec3&, real) { return lvl < 1; });
  gravity::gravity_options opt;
  opt.use_simd = simd;
  gravity::fmm_solver fmm(topo, opt);
  xoshiro256 rng(2);
  std::vector<real> rho(512);
  for (const index_t leaf : topo.leaves()) {
    for (auto& r : rho) r = rng.uniform(0.5, 2.0);
    fmm.set_leaf_density(leaf, rho);
  }
  for (auto _ : state) {
    fmm.solve();
    benchmark::DoNotOptimize(fmm.phi(topo.leaves()[0]).data());
  }
  state.SetItemsProcessed(state.iterations() * topo.num_nodes());
}

void signal_speed(benchmark::State& state) {
  auto u = random_subgrid(3);
  hydro::hydro_options opt;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hydro::max_signal_speed(u, opt));
  }
  state.SetItemsProcessed(state.iterations() * 512);
}

void boundary_pack(benchmark::State& state) {
  auto u = random_subgrid(4);
  std::vector<real> slab;
  for (auto _ : state) {
    for (int d = 0; d < NNEIGHBOR; ++d) {
      u.pack_for_neighbor(d, slab);
      benchmark::DoNotOptimize(slab.data());
    }
  }
  state.SetItemsProcessed(state.iterations() * NNEIGHBOR);
}

void amr_restrict_prolong(benchmark::State& state) {
  auto fine = random_subgrid(5);
  grid::subgrid coarse(rvec3{0, 0, 0}, 0.2);
  for (auto _ : state) {
    grid::restrict_to_coarse(fine, 3, coarse);
    grid::prolong_from_coarse(coarse, 3, fine);
    benchmark::DoNotOptimize(fine.raw().data());
  }
}

}  // namespace

BENCHMARK(hydro_flux_kernel)->Arg(0)->Arg(1)->ArgName("simd");
BENCHMARK(gravity_solve)->Arg(0)->Arg(1)->ArgName("simd")
    ->Unit(benchmark::kMillisecond);
BENCHMARK(signal_speed);
BENCHMARK(boundary_pack);
BENCHMARK(amr_restrict_prolong);

BENCHMARK_MAIN();
