/// Reproduces Table II: average power consumption on Supercomputer Fugaku
/// for the Fig. 6 runs, as measured there with PowerAPI.  The paper's
/// magnitudes grow with node count (they are totals over the job's nodes,
/// ~90-110 W per A64FX node); we print both the total and per-node values
/// from the DES utilization-based power model.

#include <map>

#include "fig_common.hpp"

int main() {
  using namespace octo;
  bench::header(
      "Table II — average power consumption on Fugaku (PowerAPI model)",
      "total job power grows ~linearly with node count at ~90-125 W per "
      "node; per-node power falls when nodes starve (lower utilization)");

  auto sc = scen::rotating_star();
  const auto m = machine::fugaku();
  des::workload_options opt;

  const std::vector<std::pair<int, std::vector<int>>> defs = {
      {5, {4, 16, 32, 128, 256}},
      {6, {128, 256, 512, 1024}},
      {7, {512, 1024}},
  };

  table t({"level", "nodes", "total W", "W/node", "paper total W"});
  // The paper's Table II entries we can anchor against (level, nodes, W).
  const std::map<std::pair<int, int>, double> paper = {
      {{5, 4}, 373.94},    {{5, 16}, 1145.69},  {{5, 32}, 1969.14},
      {{5, 128}, 11908.93}, {{5, 256}, 15228.07}, {{6, 128}, 8659.86},
      {{6, 256}, 19274},   {{6, 1024}, 111261.36}, {{7, 512}, 55310.55},
      {{7, 1024}, 111235.41}};

  bool per_node_plausible = true;
  for (const auto& [level, node_list] : defs) {
    const auto topo = sc.make_topology(level);
    for (const int nodes : node_list) {
      const auto r = des::run_experiment(topo, m, nodes, opt);
      const auto key = std::make_pair(level, nodes);
      const auto it = paper.find(key);
      t.add_row({table::fmt(static_cast<long long>(level)),
                 table::fmt(static_cast<long long>(nodes)),
                 table::fmt(r.total_power_w),
                 table::fmt(r.avg_node_power_w),
                 it == paper.end() ? "-" : table::fmt(it->second)});
      if (r.avg_node_power_w < 60 || r.avg_node_power_w > 135)
        per_node_plausible = false;
    }
  }
  t.print(std::cout);

  bench::check(per_node_plausible,
               "per-node power within the A64FX envelope (60-135 W)");
  // Linear-in-nodes shape at fixed level when utilization is comparable.
  const auto topo6 = sc.make_topology(6);
  const auto a = des::run_experiment(topo6, m, 128, opt);
  const auto b = des::run_experiment(topo6, m, 512, opt);
  bench::check(b.total_power_w > 3 * a.total_power_w,
               "total power grows ~linearly with node count");
  return 0;
}
