/// Ablation: the silent-data-corruption defense (app/invariants.hpp) vs
/// auditing off.  The auditor re-verifies and retakes a CRC32 seal over
/// every leaf's owned conserved block each step and runs the physics-
/// invariant audit (conservation drift, positivity/NaN scan, CFL sanity)
/// at its default cadence — pure reads plus one 32 KiB CRC per leaf, so
/// the claim checked is twofold: the evolved physics is bitwise identical
/// with the auditor on (it never writes), and the audit tax stays under
/// 5% of step wall time at the default cadence.

#include <algorithm>
#include <vector>

#include "common/stopwatch.hpp"
#include "dist/cluster.hpp"
#include "fig_common.hpp"

namespace {

using namespace octo;

struct run_result {
  double wall_seconds = 0;  ///< best-of-reps stepping wall time
  double cells_per_sec = 0;
  std::uint64_t audits = 0;
  std::uint64_t detections = 0;
};

run_result run(const scen::scenario& sc, bool audit, int steps, int reps,
               dist::cluster*& out) {
  run_result r;
  for (int rep = 0; rep < reps; ++rep) {
    delete out;
    dist::dist_options opt;
    opt.num_localities = 3;
    opt.sim.max_level = 2;
    opt.sim.audit.enabled = audit;
    auto* cl = new dist::cluster(sc, opt);
    out = cl;
    cl->initialize();
    const stopwatch w;
    for (int s = 0; s < steps; ++s) cl->step();
    const double seconds = w.seconds();
    // Best-of-reps: the box is shared, so the minimum is the least-noisy
    // estimate of the true cost.
    if (rep == 0 || seconds < r.wall_seconds) r.wall_seconds = seconds;
    r.audits = cl->sdc_audits();
    r.detections = cl->sdc_detections();
  }
  r.cells_per_sec =
      r.wall_seconds > 0
          ? static_cast<double>(out->topo().num_cells()) * steps /
                r.wall_seconds
          : 0;
  return r;
}

}  // namespace

int main() {
  bench::header(
      "Ablation — SDC audit overhead (rotating star, level 2, 3 localities)",
      "per-step CRC32 seals over every leaf's conserved block plus the "
      "default-cadence physics-invariant audit must cost < 5% of step wall "
      "time and leave the evolved state bitwise untouched");

  amt::runtime rt(4);
  amt::scoped_global_runtime guard(rt);
  auto sc = scen::rotating_star();
  const int steps = 8;
  const int reps = 2;

  dist::cluster* off_cl = nullptr;
  dist::cluster* on_cl = nullptr;
  const auto off = run(sc, /*audit=*/false, steps, reps, off_cl);
  const auto on = run(sc, /*audit=*/true, steps, reps, on_cl);
  const double overhead_pct =
      off.wall_seconds > 0
          ? (on.wall_seconds - off.wall_seconds) / off.wall_seconds * 100
          : 0;

  table t({"audit", "wall s", "cells/s", "audits", "detections",
           "overhead %"});
  t.add_row({"OFF", table::fmt(off.wall_seconds),
             table::fmt(off.cells_per_sec), table::fmt(0LL),
             table::fmt(0LL), "-"});
  t.add_row({"ON (seals/step, invariants/4)", table::fmt(on.wall_seconds),
             table::fmt(on.cells_per_sec),
             table::fmt(static_cast<long long>(on.audits)),
             table::fmt(static_cast<long long>(on.detections)),
             table::fmt(overhead_pct)});
  t.print(std::cout);

  bench::check(on.audits > 0, "the auditor ran");
  bench::check(on.detections == 0,
               "a healthy run trips no detector (no false positives)");
  bench::check(overhead_pct < 5.0,
               "audit overhead below 5% of step wall time");

  // The auditor only ever reads the state it guards: audited and
  // unaudited runs evolve bitwise identically.
  bool bitwise = off_cl->topo().num_leaves() == on_cl->topo().num_leaves();
  for (const index_t leaf : off_cl->topo().leaves()) {
    const auto& ga = off_cl->leaf(leaf);
    const auto& gb = on_cl->leaf(leaf);
    for (int f = 0; bitwise && f < grid::NFIELD; ++f)
      for (int i = 0; i < 8; ++i)
        for (int j = 0; j < 8; ++j)
          for (int k = 0; k < 8; ++k)
            if (ga.at(f, i, j, k) != gb.at(f, i, j, k)) bitwise = false;
    if (!bitwise) break;
  }
  bench::check(bitwise,
               "evolved state bitwise identical with auditing on and off");

  bench::apex_report("the SDC ablation");
  delete off_cl;
  delete on_cl;
  return 0;
}
