/// Reproduces Fig. 4: the v1309 contact-binary scenario (17M sub-grids in
/// the paper) on Summit (6x V100/node), Piz Daint (1x P100/node) and Fugaku
/// (A64FX, CPU only): (a) processed cells per second, (b) speedup relative
/// to the smallest node count each machine could hold the scenario on.
///
/// The full 17M-sub-grid tree does not fit in this machine's memory, so the
/// node axis is scaled to preserve sub-grids/node (weak-scaling
/// equivalence); reported rows keep the paper's node counts.  Memory floors
/// (Summit from 1 node, Piz Daint from 4, Fugaku from 16) follow §VI-B.

#include <map>

#include "fig_common.hpp"

int main() {
  using namespace octo;
  bench::header(
      "Fig. 4 — v1309 on Summit / Piz Daint / Fugaku",
      "Summit (6 GPUs/node) fastest; Piz Daint (1 GPU/node) second; Fugaku "
      "(CPU-only) close to Piz Daint; every machine scales from its "
      "memory-limited minimum node count");

  auto sc = scen::v1309();
  const auto topo = sc.make_topology(7);
  const double scale = bench::workload_scale(sc.paper_subgrids,
                                             topo.num_leaves());
  std::printf("tree: %lld sub-grids (paper: %lld; node axis scaled by %.1f "
              "to preserve sub-grids/node)\n\n",
              static_cast<long long>(topo.num_leaves()),
              static_cast<long long>(sc.paper_subgrids), scale);

  struct entry {
    std::string name;
    machine::machine_spec m;
    int min_nodes;  // memory floor from the paper
    bool gpus;
  };
  const std::vector<entry> machines = {
      {"Summit", machine::summit(), 1, true},
      {"PizDaint", machine::piz_daint(), 4, true},
      {"Fugaku", machine::fugaku(), 16, false},
  };
  const std::vector<int> node_axis = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512};

  table ta({"nodes", "Summit cells/s", "PizDaint cells/s", "Fugaku cells/s"});
  table tb({"nodes", "Summit speedup", "PizDaint speedup", "Fugaku speedup"});
  std::map<std::string, std::map<int, double>> series;

  for (const auto& e : machines) {
    for (const int nodes : node_axis) {
      if (nodes < e.min_nodes) continue;
      des::workload_options opt;
      opt.use_gpus = e.gpus;
      series[e.name][nodes] =
          bench::run_scaled(topo, e.m, nodes, sc.paper_subgrids, opt)
              .cells_per_sec;
    }
  }

  const auto cell = [&](const std::string& name, int nodes) -> std::string {
    const auto it = series[name].find(nodes);
    return it == series[name].end() ? "-" : table::fmt(it->second);
  };
  const auto speedup_cell = [&](const std::string& name,
                                int nodes) -> std::string {
    const auto& s = series[name];
    const auto it = s.find(nodes);
    if (it == s.end()) return "-";
    return table::fmt(it->second / s.begin()->second);
  };

  for (const int nodes : node_axis) {
    ta.add_row({table::fmt(static_cast<long long>(nodes)),
                cell("Summit", nodes), cell("PizDaint", nodes),
                cell("Fugaku", nodes)});
    tb.add_row({table::fmt(static_cast<long long>(nodes)),
                speedup_cell("Summit", nodes), speedup_cell("PizDaint", nodes),
                speedup_cell("Fugaku", nodes)});
  }
  std::printf("(a) processed cells per second\n");
  ta.print(std::cout);
  std::printf("\n(b) speedup vs the smallest node count that fits\n");
  tb.print(std::cout);

  // Shape checks at a common node count.
  const double s64 = series["Summit"][64];
  const double p64 = series["PizDaint"][64];
  const double f64 = series["Fugaku"][64];
  bench::check(s64 > p64, "Summit above Piz Daint");
  bench::check(p64 > f64, "Piz Daint above Fugaku");
  bench::check(p64 / f64 < 10,
               "Fugaku close to Piz Daint (within one order of magnitude)");
  bench::check(series["Fugaku"][512] > series["Fugaku"][16] * 4,
               "Fugaku scales well beyond its 16-node memory floor");
  return 0;
}
