/// Reproduces Fig. 9: splitting each Multipole-kernel launch into multiple
/// HPX tasks via the Kokkos HPX execution space (§VII-C).  OFF = 1 task per
/// kernel launch (hot cache), ON = 16 tasks.
/// Paper finding: no effect on one node (thousands of sub-grids keep all
/// cores busy), a noticeable speedup at 128 nodes where cores starve
/// during the distributed tree traversals.

#include "fig_common.hpp"

int main() {
  using namespace octo;
  bench::header(
      "Fig. 9 — Multipole-kernel work splitting on Ookami (level 5)",
      "OFF (1 task/kernel) and ON (16 tasks/kernel) tie on one node; ON "
      "wins clearly at 128 nodes by avoiding starvation during tree "
      "traversals");

  auto sc = scen::rotating_star();
  const auto topo = sc.make_topology(5);
  const auto m = machine::ookami();

  table t({"nodes", "subgrids/node", "cells/s OFF(1)", "cells/s ON(16)",
           "ON/OFF"});
  double ratio1 = 0, ratio128 = 0;
  for (const int nodes : {1, 2, 4, 8, 16, 32, 64, 128}) {
    des::workload_options off;  // 1 task per kernel launch
    des::workload_options on;
    on.m2l_chunks = 16;
    const auto r_off = des::run_experiment(topo, m, nodes, off);
    const auto r_on = des::run_experiment(topo, m, nodes, on);
    const double ratio = r_on.cells_per_sec / r_off.cells_per_sec;
    t.add_row({table::fmt(static_cast<long long>(nodes)),
               table::fmt(static_cast<long long>(topo.num_leaves() / nodes)),
               table::fmt(r_off.cells_per_sec),
               table::fmt(r_on.cells_per_sec), table::fmt(ratio)});
    if (nodes == 1) ratio1 = ratio;
    if (nodes == 128) ratio128 = ratio;
  }
  t.print(std::cout);

  bench::check(std::abs(ratio1 - 1.0) < 0.05,
               "one task per launch is sufficient on a single node");
  bench::check(ratio128 > 1.25,
               "16 tasks per launch give a noticeable speedup at 128 nodes");
  return 0;
}
