/// Reproduces Fig. 9: splitting each Multipole-kernel launch into multiple
/// HPX tasks via the Kokkos HPX execution space (§VII-C).  OFF = 1 task per
/// kernel launch (hot cache), ON = 16 tasks.
/// Paper finding: no effect on one node (thousands of sub-grids keep all
/// cores busy), a noticeable speedup at 128 nodes where cores starve
/// during the distributed tree traversals.

#include <cstdio>

#include "amt/runtime.hpp"
#include "apex/analyze.hpp"
#include "apex/metrics.hpp"
#include "app/simulation.hpp"
#include "fig_common.hpp"
#include "gravity/solver.hpp"
#include "grid/subgrid.hpp"

namespace {

/// Measured counters: run the real FMM with 1 vs 16 tasks per
/// Multipole-kernel launch and report the scheduler's task/steal counters —
/// the live series behind the DES model above.
void measured_counters() {
  using namespace octo;
  std::printf("\nmeasured scheduler counters (real FMM solve, level 3, "
              "4 workers):\n");
  auto sc = scen::rotating_star();
  tree::topology topo(sc.domain_half, 3, sc.refine);
  table t({"m2l_chunks", "tasks", "steals", "failed steals",
           "worker idle [ms]", "queue high-water"});
  std::uint64_t tasks1 = 0, tasks16 = 0;
  for (const int chunks : {1, 16}) {
    amt::runtime rt(4);
    amt::scoped_global_runtime guard(rt);
    gravity::gravity_options gopt;
    gopt.m2l_chunks = chunks;
    gravity::fmm_solver grav(topo, gopt);
    std::vector<real> rho(static_cast<std::size_t>(
                              gravity::fmm_solver::C3),
                          real(1));
    for (const index_t l : topo.leaves()) grav.set_leaf_density(l, rho);
    grav.solve(exec::amt_space(rt));
    const auto st = rt.stats();
    rt.export_apex_counters();
    (chunks == 1 ? tasks1 : tasks16) = st.tasks_executed;
    t.add_row({table::fmt(static_cast<long long>(chunks)),
               table::fmt(static_cast<long long>(st.tasks_executed)),
               table::fmt(static_cast<long long>(st.steals)),
               table::fmt(static_cast<long long>(st.failed_steals)),
               table::fmt(static_cast<double>(st.idle_ns) * 1e-6),
               table::fmt(static_cast<long long>(st.queue_high_water))});
  }
  t.print(std::cout);
  bench::check(tasks16 > tasks1,
               "16 chunks launch more, shorter tasks per kernel");
  bench::apex_report("the measured FMM solves");
}

/// Dataflow mode: Fig. 9's starvation fix taken to its limit.  Kernel
/// splitting shortens tasks *within* one phase barrier; OCTO_STEP_MODE=
/// dataflow removes the barriers altogether — the whole step is one
/// dependency graph and workers only idle when the graph itself is out of
/// ready tasks.  Measured on a real run: worker idle time must strictly
/// drop versus the barriered step.
void dataflow_mode() {
  using namespace octo;
  std::printf("\nbarrier vs dataflow step execution (real run, level 3, "
              "4 workers):\n");
  auto sc = scen::rotating_star();
  table t({"step mode", "steps", "wall [ms]", "worker idle [ms]",
           "idle fraction", "crit path [ms]"});
  // Each mode emits real metrics JSONL; the comparison below runs through
  // the same load + baseline_diff path as `octo_analyze --baseline`.
  const char* jsonl[2] = {"bench_fig9_barrier.metrics.jsonl",
                          "bench_fig9_dataflow.metrics.jsonl"};
  double idle_ms[2] = {0, 0};
  int mi = 0;
  for (const auto mode : {app::step_mode::barrier, app::step_mode::dataflow}) {
    amt::runtime rt(4);
    amt::scoped_global_runtime guard(rt);
    app::sim_options so;
    so.max_level = 3;
    so.mode = mode;
    app::simulation sim(sc, so);
    apex::metrics_sink sink;
    bench::check(sink.open(jsonl[mi]), "metrics sink opens");
    sim.initialize();
    sim.step();  // warm-up: lazy allocations out of the measured window
    sim.set_metrics_sink(&sink);
    const auto s0 = rt.stats();
    const int steps = 4;
    double wall = 0, crit_ms = 0;
    for (int i = 0; i < steps; ++i) {
      sim.step();
      wall += sim.last_step_metrics().step_seconds;
      crit_ms += sim.last_step_metrics().crit_path_us * 1e-3;
    }
    const auto s1 = rt.stats();
    sim.set_metrics_sink(nullptr);
    sink.close();
    idle_ms[mi] = static_cast<double>(s1.idle_ns - s0.idle_ns) * 1e-6;
    const double frac = wall > 0 ? idle_ms[mi] * 1e-3 / (wall * 4) : 0;
    t.add_row({mi == 0 ? "barrier" : "dataflow",
               table::fmt(static_cast<long long>(steps)),
               table::fmt(wall * 1e3), table::fmt(idle_ms[mi]),
               table::fmt(frac), table::fmt(crit_ms)});
    ++mi;
  }
  t.print(std::cout);
  bench::check(idle_ms[1] < idle_ms[0],
               "dependency-driven step strictly reduces worker idle time");

  // Offline round trip: reload both series and diff them exactly like
  // `octo_analyze --baseline barrier.jsonl dataflow.jsonl` would.
  const auto barrier = apex::load_metrics_jsonl(jsonl[0]);
  const auto dataflow = apex::load_metrics_jsonl(jsonl[1]);
  bench::check(barrier.size() == 4 && dataflow.size() == 4,
               "metrics JSONL round-trips all measured steps");
  double idle_b = 0, idle_d = 0;
  for (const auto& r : barrier) idle_b += r.idle_fraction;
  for (const auto& r : dataflow) idle_d += r.idle_fraction;
  bench::check(idle_d < idle_b,
               "reloaded idle_fraction series agrees: dataflow idles less");
  for (const auto& r : dataflow)
    bench::check(r.crit_path_us > 0 &&
                     r.crit_path_us <= r.step_seconds * 1e6,
                 "recorded critical path is positive and <= step wall time");
  const auto regs = apex::baseline_diff(barrier, dataflow, 1e4);
  apex::print_baseline_diff(std::cout, regs, 1e4);
  bench::check(regs.empty(),
               "dataflow is not 100x slower than barrier on any column");
  std::remove(jsonl[0]);
  std::remove(jsonl[1]);
}

}  // namespace

int main() {
  using namespace octo;
  bench::header(
      "Fig. 9 — Multipole-kernel work splitting on Ookami (level 5)",
      "OFF (1 task/kernel) and ON (16 tasks/kernel) tie on one node; ON "
      "wins clearly at 128 nodes by avoiding starvation during tree "
      "traversals");

  auto sc = scen::rotating_star();
  const auto topo = sc.make_topology(5);
  const auto m = machine::ookami();

  table t({"nodes", "subgrids/node", "cells/s OFF(1)", "cells/s ON(16)",
           "ON/OFF"});
  double ratio1 = 0, ratio128 = 0;
  for (const int nodes : {1, 2, 4, 8, 16, 32, 64, 128}) {
    des::workload_options off;  // 1 task per kernel launch
    des::workload_options on;
    on.m2l_chunks = 16;
    const auto r_off = des::run_experiment(topo, m, nodes, off);
    const auto r_on = des::run_experiment(topo, m, nodes, on);
    const double ratio = r_on.cells_per_sec / r_off.cells_per_sec;
    t.add_row({table::fmt(static_cast<long long>(nodes)),
               table::fmt(static_cast<long long>(topo.num_leaves() / nodes)),
               table::fmt(r_off.cells_per_sec),
               table::fmt(r_on.cells_per_sec), table::fmt(ratio)});
    if (nodes == 1) ratio1 = ratio;
    if (nodes == 128) ratio128 = ratio;
  }
  t.print(std::cout);

  bench::check(std::abs(ratio1 - 1.0) < 0.05,
               "one task per launch is sufficient on a single node");
  bench::check(ratio128 > 1.25,
               "16 tasks per launch give a noticeable speedup at 128 nodes");

  measured_counters();
  dataflow_mode();
  return 0;
}
