/// Ablation (DESIGN.md §5.4): cost-weighted SFC partitioning vs a naive
/// equal-count split, measured as remote-link fraction and end-to-end DES
/// throughput on an AMR tree whose per-leaf costs differ by level.

#include "fig_common.hpp"

int main() {
  using namespace octo;
  bench::header(
      "Ablation — SFC partition quality (rotating star, level 5)",
      "cost-weighted SFC splits balance the heavier fine-level sub-grids "
      "and keep most neighbor links local");

  auto sc = scen::rotating_star();
  const auto topo = sc.make_topology(5);

  // Per-leaf cost model: leaves at deeper levels do the same kernel work,
  // but interior ancestors' work is attributed to their first leaf, so
  // weight by (1 + 1/8 + ...) ~ uniform here; instead weight by depth to
  // exaggerate imbalance for the ablation.
  std::vector<real> cost;
  cost.reserve(static_cast<std::size_t>(topo.num_leaves()));
  for (const index_t leaf : topo.leaves())
    cost.push_back(real(1) + real(0.5) * topo.node(leaf).level);

  table t({"nodes", "remote frac (SFC)", "remote frac (count)",
           "max/mean leaves (SFC)", "max/mean (count)"});
  for (const int nodes : {4, 16, 64}) {
    const auto sfc = tree::partition_sfc(topo, nodes, cost);
    const auto cnt = tree::partition_equal_count(topo, nodes);
    const auto imbalance = [&](const tree::partition_result& p) {
      std::size_t mx = 0, total = 0;
      for (const auto& l : p.leaves_of_locality) {
        mx = std::max(mx, l.size());
        total += l.size();
      }
      return static_cast<double>(mx) /
             (static_cast<double>(total) / p.num_localities);
    };
    t.add_row({table::fmt(static_cast<long long>(nodes)),
               table::fmt(tree::remote_link_fraction(topo, sfc)),
               table::fmt(tree::remote_link_fraction(topo, cnt)),
               table::fmt(imbalance(sfc)), table::fmt(imbalance(cnt))});
  }
  t.print(std::cout);
  return 0;
}
