/// Ablation: measured-cost dynamic load rebalancing (dist/rebalance.cpp)
/// vs a partition frozen at its static estimate, on a skewed double-white-
/// dwarf tree — refinement concentrates around the two stars, so the
/// measured per-leaf cost (hydro + gravity interaction lists + boundary
/// serialization) drifts away from the cells x depth estimate the initial
/// split balances.  Both runs *measure* (same cost-model overhead); only
/// one migrates.  The claim checked: the measured per-locality imbalance
/// (max/mean summed leaf cost, the `max_over_mean` metrics column) ends
/// strictly lower with rebalancing on, while the evolved physics stays
/// bitwise identical — migration is a performance knob, not a physics one.

#include <vector>

#include "common/stopwatch.hpp"
#include "dist/cluster.hpp"
#include "fig_common.hpp"

namespace {

using namespace octo;

struct run_result {
  std::vector<double> max_over_mean;  ///< one sample per step
  double cells_per_sec = 0;
  std::uint64_t rebalances = 0;
  std::uint64_t skipped = 0;
};

run_result run(const scen::scenario& sc, bool rebalance, int steps,
               dist::cluster*& out) {
  dist::dist_options opt;
  opt.num_localities = 4;
  opt.sim.max_level = 2;
  if (rebalance) {
    opt.lb.every = 2;
    opt.lb.min_gain = 1.0;  // apply every non-regressing candidate
  } else {
    opt.lb.measure = true;  // same measurement overhead, no migrations
  }
  auto* cl = new dist::cluster(sc, opt);
  out = cl;
  cl->initialize();
  run_result r;
  const stopwatch w;
  for (int s = 0; s < steps; ++s) {
    cl->step();
    r.max_over_mean.push_back(cl->last_step_metrics().max_over_mean);
  }
  const double seconds = w.seconds();
  r.cells_per_sec = seconds > 0 ? static_cast<double>(cl->topo().num_cells()) *
                                      steps / seconds
                                : 0;
  r.rebalances = cl->rebalance_count();
  r.skipped = cl->rebalances_skipped();
  return r;
}

}  // namespace

int main() {
  bench::header(
      "Ablation — measured-cost dynamic load rebalancing (dwd, level 2, "
      "4 localities)",
      "re-splitting the SFC over measured per-leaf costs and live-migrating "
      "the moved leaves lowers the per-locality load imbalance the frozen "
      "static partition accumulates, without touching the physics");

  amt::runtime rt(4);
  amt::scoped_global_runtime guard(rt);
  auto sc = scen::dwd();
  const int steps = 6;

  dist::cluster* frozen_cl = nullptr;
  dist::cluster* lb_cl = nullptr;
  const auto frozen = run(sc, /*rebalance=*/false, steps, frozen_cl);
  const auto lb = run(sc, /*rebalance=*/true, steps, lb_cl);

  table t({"rebalance", "max/mean step1", "max/mean final", "applied",
           "skipped", "cells/s"});
  const auto row = [&](const char* name, const run_result& r) {
    t.add_row({name, table::fmt(r.max_over_mean.front()),
               table::fmt(r.max_over_mean.back()),
               table::fmt(static_cast<long long>(r.rebalances)),
               table::fmt(static_cast<long long>(r.skipped)),
               table::fmt(r.cells_per_sec)});
  };
  row("OFF (frozen static partition)", frozen);
  row("ON  (every 2 steps)", lb);
  t.print(std::cout);

  bench::check(lb.rebalances > 0, "rebalances were applied");
  bench::check(lb.max_over_mean.back() < frozen.max_over_mean.back(),
               "measured per-locality imbalance strictly lower with "
               "rebalancing on");

  // Physics transparency: identical evolved fields, cell for cell.
  bool bitwise = frozen_cl->topo().num_leaves() == lb_cl->topo().num_leaves();
  for (const index_t leaf : frozen_cl->topo().leaves()) {
    const auto& ga = frozen_cl->leaf(leaf);
    const auto& gb = lb_cl->leaf(leaf);
    for (int f = 0; bitwise && f < grid::NFIELD; ++f)
      for (int i = 0; i < 8; ++i)
        for (int j = 0; j < 8; ++j)
          for (int k = 0; k < 8; ++k)
            if (ga.at(f, i, j, k) != gb.at(f, i, j, k)) bitwise = false;
    if (!bitwise) break;
  }
  bench::check(bitwise, "evolved state bitwise identical with and without "
                        "rebalancing");

  bench::apex_report("the rebalance ablation");
  delete frozen_cl;
  delete lb_cl;
  return 0;
}
