/// Reproduces Fig. 5: the DWD scenario (level 12, 5,150,720 sub-grids in
/// the paper, sized to fit one 28-GB Fugaku node) on Perlmutter with
/// 4x A100, Perlmutter CPU-only, and Fugaku; runs were limited to 128
/// nodes during Perlmutter's phase-1 test period.
/// Paper findings: GPUs win by a wide margin; turning them off drops
/// throughput by orders of magnitude; Fugaku lands near the CPU-only run.

#include <map>

#include "fig_common.hpp"

int main() {
  using namespace octo;
  bench::header(
      "Fig. 5 — DWD on Perlmutter (with/without GPUs) and Fugaku",
      "Perlmutter 4x A100 fastest by a large factor; CPU-only Perlmutter "
      "orders of magnitude slower; Fugaku close to CPU-only Perlmutter");

  auto sc = scen::dwd();
  const auto topo = sc.make_topology(7);
  const double scale =
      bench::workload_scale(sc.paper_subgrids, topo.num_leaves());
  std::printf("tree: %lld sub-grids (paper: %lld; node axis scaled by %.1f)\n\n",
              static_cast<long long>(topo.num_leaves()),
              static_cast<long long>(sc.paper_subgrids), scale);

  const std::vector<int> node_axis = {1, 2, 4, 8, 16, 32, 64, 128};
  std::map<std::string, std::map<int, double>> series;

  for (const int nodes : node_axis) {
    des::workload_options gpu;
    des::workload_options cpu;
    cpu.use_gpus = false;
    series["pm_gpu"][nodes] =
        bench::run_scaled(topo, machine::perlmutter(), nodes,
                          sc.paper_subgrids, gpu).cells_per_sec;
    series["pm_cpu"][nodes] =
        bench::run_scaled(topo, machine::perlmutter(), nodes,
                          sc.paper_subgrids, cpu).cells_per_sec;
    series["fugaku"][nodes] =
        bench::run_scaled(topo, machine::fugaku(), nodes, sc.paper_subgrids,
                          cpu).cells_per_sec;
  }

  table ta({"nodes", "Perlmutter 4xA100", "Perlmutter CPU-only", "Fugaku"});
  table tb({"nodes", "speedup 4xA100", "speedup CPU-only", "speedup Fugaku"});
  for (const int nodes : node_axis) {
    ta.add_row({table::fmt(static_cast<long long>(nodes)),
                table::fmt(series["pm_gpu"][nodes]),
                table::fmt(series["pm_cpu"][nodes]),
                table::fmt(series["fugaku"][nodes])});
    tb.add_row({table::fmt(static_cast<long long>(nodes)),
                table::fmt(series["pm_gpu"][nodes] / series["pm_gpu"][1]),
                table::fmt(series["pm_cpu"][nodes] / series["pm_cpu"][1]),
                table::fmt(series["fugaku"][nodes] / series["fugaku"][1])});
  }
  std::printf("(a) processed cells per second\n");
  ta.print(std::cout);
  std::printf("\n(b) speedup vs one node\n");
  tb.print(std::cout);

  const double ratio_gpu_cpu = series["pm_gpu"][16] / series["pm_cpu"][16];
  const double ratio_fugaku = series["fugaku"][16] / series["pm_cpu"][16];
  std::printf("\nGPU/CPU-only ratio at 16 nodes: %.1fx (paper: ~2 orders of "
              "magnitude; our kernel-efficiency model reproduces the "
              "direction at ~1.5 orders, see EXPERIMENTS.md)\n",
              ratio_gpu_cpu);
  bench::check(ratio_gpu_cpu > 10,
               "GPUs more than an order of magnitude above CPU-only");
  bench::check(ratio_fugaku > 0.4 && ratio_fugaku < 2.5,
               "Fugaku close to the CPU-only Perlmutter run");
  return 0;
}
