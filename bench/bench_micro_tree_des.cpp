/// Costs of the structural machinery: AMR tree construction, SFC
/// partitioning and the discrete-event engine's event throughput.

#include <benchmark/benchmark.h>

#include "des/workload.hpp"
#include "scenarios/scenarios.hpp"
#include "tree/partition.hpp"

namespace {

using namespace octo;

void topology_build(benchmark::State& state) {
  const int level = static_cast<int>(state.range(0));
  auto sc = scen::rotating_star();
  for (auto _ : state) {
    tree::topology topo(sc.domain_half, level, sc.refine);
    benchmark::DoNotOptimize(topo.num_leaves());
  }
}

void partition_sfc_bench(benchmark::State& state) {
  auto sc = scen::rotating_star();
  tree::topology topo(sc.domain_half, 5, sc.refine);
  for (auto _ : state) {
    auto p = tree::partition_sfc(topo, 64);
    benchmark::DoNotOptimize(p.owner_of_node.data());
  }
  state.SetItemsProcessed(state.iterations() * topo.num_leaves());
}

void neighbor_queries(benchmark::State& state) {
  auto sc = scen::rotating_star();
  tree::topology topo(sc.domain_half, 4, sc.refine);
  for (auto _ : state) {
    index_t acc = 0;
    for (const index_t leaf : topo.leaves())
      for (int d = 0; d < NNEIGHBOR; ++d)
        acc += topo.neighbor_or_coarser(leaf, d);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * topo.num_leaves() * 26);
}

void des_engine_throughput(benchmark::State& state) {
  // wide synthetic graph: events/second of the simulator core
  auto sc = scen::rotating_star();
  tree::topology topo(sc.domain_half, 4, sc.refine);
  const auto part = tree::partition_sfc(topo, 16);
  const des::workload_options opt;
  for (auto _ : state) {
    des::graph g = des::build_step_graph(topo, part, machine::fugaku(), opt);
    des::engine_config cfg;
    cfg.machine = machine::fugaku();
    cfg.num_nodes = 16;
    const auto r = des::simulate(g, cfg);
    benchmark::DoNotOptimize(r.makespan);
    state.counters["tasks"] = static_cast<double>(r.tasks_executed);
  }
}

}  // namespace

BENCHMARK(topology_build)->Arg(3)->Arg(4)->Arg(5)
    ->Unit(benchmark::kMillisecond)->ArgName("level");
BENCHMARK(partition_sfc_bench);
BENCHMARK(neighbor_queries);
BENCHMARK(des_engine_throughput)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
