#pragma once
/// \file fig_common.hpp
/// Shared helpers for the figure/table reproduction harness.
///
/// Each bench_figN binary regenerates one figure or table of the paper's
/// evaluation: it sweeps the same axis (node counts, core counts, knob
/// on/off), prints the series as a table, and emits PASS/CHECK lines for
/// the qualitative claims the paper makes about that figure.  Absolute
/// throughputs come from the calibrated DES (see DESIGN.md §4); the claims
/// verified here are the *shapes*.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "apex/apex.hpp"
#include "common/table.hpp"
#include "des/workload.hpp"
#include "machine/spec.hpp"
#include "scenarios/scenarios.hpp"

namespace octo::bench {

inline void header(const std::string& title, const std::string& paper_claim) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("paper: %s\n\n", paper_claim.c_str());
}

inline void check(bool ok, const std::string& what) {
  std::printf("[%s] %s\n", ok ? "PASS" : "CHECK", what.c_str());
}

/// Dump the apex registry after a measured (non-DES) section, so each
/// figure bench also shows the live counters backing its model
/// (EXPERIMENTS.md maps counters to figures).
inline void apex_report(const std::string& what) {
  std::printf("\napex registry after %s:\n", what.c_str());
  apex::registry::instance().report(std::cout);
}

/// Scale factor between the paper's workload and the tree we can hold in
/// memory (informational).
inline double workload_scale(index_t paper_subgrids, index_t our_subgrids) {
  if (paper_subgrids == 0) return 1.0;
  return static_cast<double>(paper_subgrids) /
         static_cast<double>(our_subgrids);
}

/// Run a paper-sized configuration on a smaller tree by matching
/// *sub-grids per node*: simulate n_sim nodes such that our tree's
/// leaves/node equals the paper's, then scale the per-node rate back to
/// the paper's node count (weak-scaling equivalence; see EXPERIMENTS.md).
/// When even one simulated node holds fewer sub-grids than a paper node
/// would (deeply saturated regimes), the per-node rate is taken from the
/// one-node run — both regimes are compute-bound, so this is accurate to
/// the (small) difference in surface-to-volume communication.
struct scaled_run {
  double cells_per_sec = 0;  ///< projected for the paper-sized workload
  int sim_nodes = 1;
};

inline scaled_run run_scaled(const tree::topology& topo,
                             const machine::machine_spec& m, int paper_nodes,
                             index_t paper_subgrids,
                             const des::workload_options& opt) {
  double ratio = static_cast<double>(paper_nodes);
  if (paper_subgrids > 0)
    ratio = static_cast<double>(topo.num_leaves()) * paper_nodes /
            static_cast<double>(paper_subgrids);
  const int n_sim =
      std::max(1, std::min(1024, static_cast<int>(ratio + 0.5)));
  const auto r = des::run_experiment(topo, m, n_sim, opt);
  return {r.cells_per_sec / n_sim * paper_nodes, n_sim};
}

}  // namespace octo::bench
