/// Reproduces Fig. 10: rotating star (level 5) on Ookami vs Supercomputer
/// Fugaku.  Ookami runs the fully optimized configuration (communication
/// optimization + multipole work splitting), with and without SVE; Fugaku
/// runs the communication optimization with the older (allocation-period)
/// SVE vectorization.
/// Paper finding: with SVE both are close up to ~8 nodes; beyond that
/// Ookami pulls ahead (extra multipole optimization; InfiniBand vs Tofu-D
/// under Fujitsu MPI deserves further investigation).

#include "fig_common.hpp"

int main() {
  using namespace octo;
  bench::header(
      "Fig. 10 — Ookami vs Fugaku (rotating star, level 5)",
      "SVE runs close up to ~8 nodes; beyond that the fully optimized "
      "Ookami configuration is faster; the scalar Ookami run trails both");

  auto sc = scen::rotating_star();
  const auto topo = sc.make_topology(5);

  des::workload_options ookami_sve;  // full §VII optimizations
  ookami_sve.m2l_chunks = 16;
  des::workload_options ookami_scalar = ookami_sve;
  ookami_scalar.simd = false;
  des::workload_options fugaku_opt;  // comm-opt + older SVE, no splitting
  // (the machine spec encodes the older SVE tuning: simd_speedup 2.5 vs 2.8)

  table t({"nodes", "Ookami SVE", "Ookami scalar", "Fugaku SVE",
           "Ookami/Fugaku"});
  double r8 = 0, r128 = 0;
  for (const int nodes : {1, 2, 4, 8, 16, 32, 64, 128}) {
    const auto ro = des::run_experiment(topo, machine::ookami(), nodes,
                                        ookami_sve);
    const auto rs = des::run_experiment(topo, machine::ookami(), nodes,
                                        ookami_scalar);
    const auto rf = des::run_experiment(topo, machine::fugaku(), nodes,
                                        fugaku_opt);
    const double ratio = ro.cells_per_sec / rf.cells_per_sec;
    t.add_row({table::fmt(static_cast<long long>(nodes)),
               table::fmt(ro.cells_per_sec), table::fmt(rs.cells_per_sec),
               table::fmt(rf.cells_per_sec), table::fmt(ratio)});
    if (nodes == 8) r8 = ratio;
    if (nodes == 128) r128 = ratio;
  }
  t.print(std::cout);

  bench::check(r8 < 1.35, "Ookami and Fugaku close at 8 nodes");
  bench::check(r128 > r8, "Ookami pulls ahead at larger node counts");
  return 0;
}
