/// Reproduces Fig. 7: influence of SVE vectorization on distributed runs of
/// the rotating star (level 5) on Ookami, 1-128 nodes.
/// Paper finding: "we clearly see the effect of vectorization ... even
/// though only the compute kernels are using it" — single-kernel speedups
/// of 2-3x carry through to end-to-end throughput.

#include "fig_common.hpp"

int main() {
  using namespace octo;
  bench::header(
      "Fig. 7 — SVE vectorization on Ookami (rotating star, level 5)",
      "SVE-vectorized kernels give a clear end-to-end win (kernel speedup "
      "2-3x) at every node count");

  auto sc = scen::rotating_star();
  const auto topo = sc.make_topology(5);
  const auto m = machine::ookami();

  table t({"nodes", "cells/s SVE", "cells/s scalar", "speedup"});
  double min_speedup = 1e9, max_speedup = 0;
  for (const int nodes : {1, 2, 4, 8, 16, 32, 64, 128}) {
    des::workload_options sve;
    des::workload_options scalar;
    scalar.simd = false;
    const auto rv = des::run_experiment(topo, m, nodes, sve);
    const auto rs = des::run_experiment(topo, m, nodes, scalar);
    const double speedup = rv.cells_per_sec / rs.cells_per_sec;
    min_speedup = std::min(min_speedup, speedup);
    max_speedup = std::max(max_speedup, speedup);
    t.add_row({table::fmt(static_cast<long long>(nodes)),
               table::fmt(rv.cells_per_sec), table::fmt(rs.cells_per_sec),
               table::fmt(speedup)});
  }
  t.print(std::cout);

  bench::check(min_speedup > 1.8,
               "SVE wins clearly at every node count (>1.8x end to end)");
  bench::check(max_speedup < 3.0,
               "end-to-end speedup below the paper's 2-3x kernel ceiling");
  return 0;
}
