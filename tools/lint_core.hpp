#pragma once
/// \file lint_core.hpp
/// Project-rule linter (`octo_lint`, ctest label `lint`).  Token/regex
/// based — no compiler front end — enforcing the handful of conventions
/// the runtime depends on but the type system cannot express:
///
///   getenv          raw std::getenv outside common/config.cpp; everything
///                   must go through config::env so the env registry stays
///                   the single source of truth
///   env-registry    an "OCTO_*" string literal naming a variable absent
///                   from config::env_registry() (src/common/config.cpp)
///   metric-registry a registry::counter("x") / ::timer("x") in src/ whose
///                   name is absent from apex::metric_registry()
///                   (src/apex/apex.cpp; '*' entries are prefixes)
///   blocking-get    .get( / .wait( inside the argument extent of an
///                   amt::dataflow(...) call — a blocking wait inside a
///                   task body can deadlock the worker pool
///   ctest-timeout   an add_test() without a TIMEOUT property, or a
///                   gtest_discover_tests() without PROPERTIES TIMEOUT —
///                   a hung test must fail the suite, not wedge it
///
/// A line containing `octo-lint-allow(<rule>)` is exempt from <rule>.
/// Paths containing "lint_fixtures" are never scanned by run() — they hold
/// the deliberately-broken inputs tests/lint_test.cpp feeds the per-file
/// entry points below.

#include <string>
#include <vector>

namespace octo::lint {

struct finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// Registered-name tables, parsed textually from the tree (one
/// `{"name", "doc"},` entry per line inside the registry function).
struct registries {
  std::vector<std::string> env;      ///< from config::env_registry()
  std::vector<std::string> metrics;  ///< from apex::metric_registry()
};

/// Extract the names from a registry table: the `{"name", ...},` entries
/// between the line containing \p anchor and the closing `};`.
std::vector<std::string> parse_registry_table(const std::string& file_text,
                                              const std::string& anchor);

/// Load both tables from <repo_root>/src.  Throws octo::error if either
/// file or table is missing (the linter must not pass vacuously).
registries load_registries(const std::string& repo_root);

/// Lint one C++ translation unit.  \p in_src enables the metric-registry
/// rule (tests exercise the apex registry with ad-hoc names, so the rule
/// only binds under src/).  Appends to \p out.
void lint_cpp_text(const std::string& path, const std::string& text,
                   const registries& reg, bool in_src,
                   std::vector<finding>& out);

/// Lint one CMake listfile (the ctest-timeout rule).
void lint_cmake_text(const std::string& path, const std::string& text,
                     std::vector<finding>& out);

/// Walk the tree (src/ tools/ tests/ bench/ examples/ + every
/// CMakeLists.txt) and apply all rules.  Skips paths containing
/// "lint_fixtures".
std::vector<finding> run(const std::string& repo_root);

}  // namespace octo::lint
