#include "lint_core.hpp"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace octo::lint {

namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  OCTO_CHECK_MSG(in.good(), "octo_lint: cannot read " << p.string());
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

bool is_word(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

int line_of(const std::string& text, std::size_t pos) {
  return 1 + static_cast<int>(std::count(text.begin(),
                                         text.begin() +
                                             static_cast<std::ptrdiff_t>(pos),
                                         '\n'));
}

/// The raw text of the line containing \p pos (for the allow-comment
/// escape, which must see comments).
std::string line_text(const std::string& text, std::size_t pos) {
  std::size_t b = text.rfind('\n', pos);
  b = (b == std::string::npos) ? 0 : b + 1;
  std::size_t e = text.find('\n', pos);
  if (e == std::string::npos) e = text.size();
  return text.substr(b, e - b);
}

bool allowed(const std::string& text, std::size_t pos, const char* rule) {
  return line_text(text, pos).find(std::string("octo-lint-allow(") + rule +
                                   ")") != std::string::npos;
}

/// One string literal found while blanking.
struct literal {
  std::size_t pos;      ///< offset of the opening quote in the original
  std::string content;  ///< raw (unescaped) characters between the quotes
};

/// C++ comment/string stripper: returns a same-length copy with comment
/// bodies and string/char literal contents replaced by spaces (newlines
/// kept, so offsets and line numbers agree), collecting the literals.
/// Handles //, /* */, '...', "..." with escapes, and R"delim(...)delim".
std::string blank_noncode(const std::string& s, std::vector<literal>* lits) {
  std::string out = s;
  std::size_t i = 0;
  const auto blank = [&](std::size_t from, std::size_t to) {
    for (std::size_t k = from; k < to && k < out.size(); ++k)
      if (out[k] != '\n') out[k] = ' ';
  };
  while (i < s.size()) {
    const char c = s[i];
    if (c == '/' && i + 1 < s.size() && s[i + 1] == '/') {
      std::size_t e = s.find('\n', i);
      if (e == std::string::npos) e = s.size();
      blank(i, e);
      i = e;
    } else if (c == '/' && i + 1 < s.size() && s[i + 1] == '*') {
      std::size_t e = s.find("*/", i + 2);
      e = (e == std::string::npos) ? s.size() : e + 2;
      blank(i, e);
      i = e;
    } else if (c == 'R' && i + 1 < s.size() && s[i + 1] == '"' &&
               (i == 0 || !is_word(s[i - 1]))) {
      const std::size_t open = s.find('(', i + 2);
      if (open == std::string::npos) {
        ++i;
        continue;
      }
      const std::string close =
          ")" + s.substr(i + 2, open - (i + 2)) + "\"";
      std::size_t e = s.find(close, open + 1);
      e = (e == std::string::npos) ? s.size() : e + close.size();
      if (lits != nullptr)
        lits->push_back(
            literal{i, s.substr(open + 1, e - close.size() - (open + 1))});
      blank(i + 1, e);
      i = e;
    } else if (c == '"' || c == '\'') {
      std::size_t e = i + 1;
      std::string content;
      while (e < s.size() && s[e] != c) {
        if (s[e] == '\\' && e + 1 < s.size()) {
          content += s[e + 1];
          e += 2;
        } else {
          content += s[e];
          ++e;
        }
      }
      e = (e == std::string::npos || e >= s.size()) ? s.size() : e + 1;
      if (c == '"' && lits != nullptr) lits->push_back(literal{i, content});
      blank(i + 1, e - 1);
      i = e;
    } else {
      ++i;
    }
  }
  return out;
}

/// Find token \p tok (must end in '(') in blanked code at a word boundary.
std::size_t find_call(const std::string& code, const std::string& tok,
                      std::size_t from) {
  for (std::size_t p = code.find(tok, from); p != std::string::npos;
       p = code.find(tok, p + 1)) {
    if (p == 0 || !is_word(code[p - 1])) return p;
  }
  return std::string::npos;
}

/// End of the balanced-paren extent opened by code[open] == '('.
std::size_t paren_extent(const std::string& code, std::size_t open) {
  int depth = 0;
  for (std::size_t p = open; p < code.size(); ++p) {
    if (code[p] == '(') ++depth;
    if (code[p] == ')' && --depth == 0) return p;
  }
  return code.size();
}

bool env_registered(const registries& reg, const std::string& name) {
  return std::find(reg.env.begin(), reg.env.end(), name) != reg.env.end();
}

bool metric_registered(const registries& reg, const std::string& name) {
  for (const auto& entry : reg.metrics) {
    if (!entry.empty() && entry.back() == '*') {
      if (name.rfind(entry.substr(0, entry.size() - 1), 0) == 0) return true;
    } else if (name == entry) {
      return true;
    }
  }
  return false;
}

/// First "..." literal inside code starting at \p from (blanked code tells
/// us where quotes are; \p lits supplies the content).
const literal* literal_at_or_after(const std::vector<literal>& lits,
                                   std::size_t from, std::size_t before) {
  for (const auto& l : lits)
    if (l.pos >= from && l.pos < before) return &l;
  return nullptr;
}

void check_getenv(const std::string& path, const std::string& text,
                  const std::string& code, std::vector<finding>& out) {
  if (path.find("common/config.cpp") != std::string::npos) return;
  for (std::size_t p = find_call(code, "getenv(", 0); p != std::string::npos;
       p = find_call(code, "getenv(", p + 1)) {
    if (allowed(text, p, "getenv")) continue;
    out.push_back(finding{path, line_of(text, p), "getenv",
                          "raw getenv — read the environment through "
                          "config::env so the variable is declared in "
                          "config::env_registry()"});
  }
}

/// OCTO_*-named identifiers that are not environment variables (assertion
/// macros, build-time defines) and may legitimately appear inside string
/// literals.
bool env_allowlisted(const std::string& name) {
  for (const char* ok :
       {"OCTO_CHECK", "OCTO_CHECK_MSG", "OCTO_ASSERT", "OCTO_REPO_ROOT"})
    if (name == ok) return true;
  return false;
}

void check_env_literals(const std::string& path, const std::string& text,
                        const std::vector<literal>& lits,
                        const registries& reg, std::vector<finding>& out) {
  for (const auto& l : lits) {
    const std::string& s = l.content;
    for (std::size_t p = s.find("OCTO_"); p != std::string::npos;
         p = s.find("OCTO_", p + 1)) {
      if (p > 0 && is_word(s[p - 1])) continue;
      std::size_t e = p + 5;
      while (e < s.size() &&
             (std::isupper(static_cast<unsigned char>(s[e])) != 0 ||
              std::isdigit(static_cast<unsigned char>(s[e])) != 0 ||
              s[e] == '_'))
        ++e;
      if (e == p + 5) continue;  // bare "OCTO_" prefix, not a name
      const std::string name = s.substr(p, e - p);
      if (env_registered(reg, name) || env_allowlisted(name)) continue;
      if (allowed(text, l.pos, "env-registry")) continue;
      out.push_back(finding{path, line_of(text, l.pos), "env-registry",
                            "'" + name +
                                "' is not declared in "
                                "config::env_registry() "
                                "(src/common/config.cpp)"});
    }
  }
}

void check_metric_names(const std::string& path, const std::string& text,
                        const std::string& code,
                        const std::vector<literal>& lits,
                        const registries& reg, std::vector<finding>& out) {
  for (const char* tok : {".counter(", ".timer("}) {
    // '.' is not a word char, so find the token directly.
    for (std::size_t p = code.find(tok, 0); p != std::string::npos;
         p = code.find(tok, p + 1)) {
      const std::size_t open = p + std::strlen(tok) - 1;
      const std::size_t close = paren_extent(code, open);
      const literal* l = literal_at_or_after(lits, open, close);
      if (l == nullptr) continue;  // name built dynamically with no prefix
      if (metric_registered(reg, l->content)) continue;
      if (allowed(text, p, "metric-registry")) continue;
      out.push_back(finding{path, line_of(text, p), "metric-registry",
                            "metric '" + l->content +
                                "' is not declared in "
                                "apex::metric_registry() "
                                "(src/apex/apex.cpp)"});
    }
  }
}

void check_blocking_get(const std::string& path, const std::string& text,
                        const std::string& code, std::vector<finding>& out) {
  for (std::size_t p = find_call(code, "dataflow(", 0);
       p != std::string::npos; p = find_call(code, "dataflow(", p + 1)) {
    const std::size_t open = p + 8;
    const std::size_t close = paren_extent(code, open);
    for (const char* blocker : {".get(", ".wait("}) {
      for (std::size_t b = code.find(blocker, open);
           b != std::string::npos && b < close;
           b = code.find(blocker, b + 1)) {
        if (allowed(text, b, "blocking-get")) continue;
        out.push_back(finding{path, line_of(text, b), "blocking-get",
                              std::string("blocking '") + blocker +
                                  ")' inside a dataflow task body — "
                                  "express the dependency as a dataflow "
                                  "dep instead of blocking a worker"});
      }
    }
  }
}

/// Word-boundary search: "TIMEOUT" must not match inside
/// DISCOVERY_TIMEOUT.
bool has_token(const std::string& text, const char* tok) {
  const std::size_t n = std::strlen(tok);
  for (std::size_t p = text.find(tok); p != std::string::npos;
       p = text.find(tok, p + 1)) {
    const bool lb = p == 0 || !is_word(text[p - 1]);
    const bool rb = p + n >= text.size() || !is_word(text[p + n]);
    if (lb && rb) return true;
  }
  return false;
}

/// First CMake argument token after `add_test(` (skipping NAME).
std::string add_test_name(const std::string& text, std::size_t open,
                          std::size_t close) {
  std::istringstream args(text.substr(open + 1, close - open - 1));
  std::string tok;
  while (args >> tok) {
    if (tok == "NAME") continue;
    return tok;
  }
  return {};
}

}  // namespace

std::vector<std::string> parse_registry_table(const std::string& file_text,
                                              const std::string& anchor) {
  std::vector<std::string> names;
  const std::size_t start = file_text.find(anchor);
  OCTO_CHECK_MSG(start != std::string::npos,
                 "octo_lint: registry anchor '" << anchor << "' not found");
  const std::size_t end = file_text.find("};", start);
  std::istringstream body(
      file_text.substr(start, end == std::string::npos ? std::string::npos
                                                       : end - start));
  std::string line;
  while (std::getline(body, line)) {
    const std::size_t q0 = line.find("{\"");
    if (q0 == std::string::npos) continue;
    const std::size_t q1 = line.find('"', q0 + 2);
    if (q1 == std::string::npos) continue;
    names.push_back(line.substr(q0 + 2, q1 - (q0 + 2)));
  }
  OCTO_CHECK_MSG(!names.empty(),
                 "octo_lint: registry table after '" << anchor << "' is empty");
  return names;
}

registries load_registries(const std::string& repo_root) {
  registries reg;
  reg.env = parse_registry_table(
      read_file(fs::path(repo_root) / "src/common/config.cpp"),
      "config::env_registry()");
  reg.metrics = parse_registry_table(
      read_file(fs::path(repo_root) / "src/apex/apex.cpp"),
      "metric_registry()");
  return reg;
}

void lint_cpp_text(const std::string& path, const std::string& text,
                   const registries& reg, bool in_src,
                   std::vector<finding>& out) {
  std::vector<literal> lits;
  const std::string code = blank_noncode(text, &lits);
  check_getenv(path, text, code, out);
  check_env_literals(path, text, lits, reg, out);
  if (in_src) check_metric_names(path, text, code, lits, reg, out);
  check_blocking_get(path, text, code, out);
}

void lint_cmake_text(const std::string& path, const std::string& text,
                     std::vector<finding>& out) {
  for (std::size_t p = find_call(text, "add_test(", 0);
       p != std::string::npos; p = find_call(text, "add_test(", p + 1)) {
    const std::size_t open = p + 8;
    const std::size_t close = paren_extent(text, open);
    const std::string name = add_test_name(text, open, close);
    // Satisfied by a TIMEOUT in the same call, or by a later
    // set_tests_properties(<name> ... TIMEOUT ...) in the same file
    // (<name> matched textually, so ${var} forms pair up too).
    bool has_timeout = has_token(text.substr(open, close - open), "TIMEOUT");
    for (std::size_t q = find_call(text, "set_tests_properties(", 0);
         !has_timeout && q != std::string::npos;
         q = find_call(text, "set_tests_properties(", q + 1)) {
      const std::size_t qclose = paren_extent(text, q + 21);
      const std::string props = text.substr(q, qclose - q);
      has_timeout = !name.empty() &&
                    props.find(name) != std::string::npos &&
                    has_token(props, "TIMEOUT");
    }
    if (has_timeout || allowed(text, p, "ctest-timeout")) continue;
    out.push_back(finding{path, line_of(text, p), "ctest-timeout",
                          "add_test(" + name +
                              ") has no TIMEOUT — a hang must fail the "
                              "suite, not wedge it"});
  }
  for (std::size_t p = find_call(text, "gtest_discover_tests(", 0);
       p != std::string::npos;
       p = find_call(text, "gtest_discover_tests(", p + 1)) {
    const std::size_t close = paren_extent(text, p + 21);
    if (has_token(text.substr(p, close - p), "TIMEOUT")) continue;
    if (allowed(text, p, "ctest-timeout")) continue;
    out.push_back(finding{path, line_of(text, p), "ctest-timeout",
                          "gtest_discover_tests() without PROPERTIES "
                          "TIMEOUT"});
  }
}

std::vector<finding> run(const std::string& repo_root) {
  const registries reg = load_registries(repo_root);
  std::vector<finding> out;
  const fs::path root(repo_root);

  std::vector<fs::path> cpp_files, cmake_files;
  for (const char* dir : {"src", "tools", "tests", "bench", "examples"}) {
    const fs::path d = root / dir;
    if (!fs::exists(d)) continue;
    for (const auto& e : fs::recursive_directory_iterator(d)) {
      if (!e.is_regular_file()) continue;
      const std::string p = e.path().string();
      if (p.find("lint_fixtures") != std::string::npos) continue;
      const std::string ext = e.path().extension().string();
      if (ext == ".cpp" || ext == ".hpp") cpp_files.push_back(e.path());
      if (e.path().filename() == "CMakeLists.txt")
        cmake_files.push_back(e.path());
    }
  }
  cmake_files.push_back(root / "CMakeLists.txt");
  std::sort(cpp_files.begin(), cpp_files.end());
  std::sort(cmake_files.begin(), cmake_files.end());

  for (const auto& f : cpp_files) {
    const std::string rel = fs::relative(f, root).generic_string();
    lint_cpp_text(rel, read_file(f), reg, rel.rfind("src/", 0) == 0, out);
  }
  for (const auto& f : cmake_files) {
    const std::string rel = fs::relative(f, root).generic_string();
    lint_cmake_text(rel, read_file(f), out);
  }
  return out;
}

}  // namespace octo::lint
