/// \file octo_lint.cpp
/// Project-rule linter CLI (see lint_core.hpp for the rules).  Registered
/// as a ctest with label `lint`:
///
///   octo_lint --root /path/to/repo        # exit 0 clean, 1 findings
///
/// Findings print as `file:line: [rule] message`, one per line, so editors
/// and CI logs can jump straight to the site.

#include <iostream>
#include <string>

#include "lint_core.hpp"

int main(int argc, char** argv) {
  std::string root = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      std::cout << "usage: octo_lint [--root DIR]\n";
      return 0;
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else {
      std::cerr << "octo_lint: unknown argument " << arg << "\n";
      return 2;
    }
  }
  try {
    const auto findings = octo::lint::run(root);
    for (const auto& f : findings)
      std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
                << f.message << "\n";
    if (!findings.empty()) {
      std::cout << "octo_lint: " << findings.size() << " finding"
                << (findings.size() == 1 ? "" : "s") << "\n";
      return 1;
    }
    std::cout << "octo_lint: clean\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "octo_lint: " << e.what() << "\n";
    return 2;
  }
}
