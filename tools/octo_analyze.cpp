/// \file octo_analyze.cpp
/// Offline analyzer over the observability artifacts the runtime emits:
///
///   octo_analyze trace.merged.json            # span/flow/utilization report
///   octo_analyze metrics.jsonl                # per-step metrics summary
///   octo_analyze --baseline old.jsonl new.jsonl --threshold 10
///                                             # flag per-step regressions
///   octo_analyze --race-audit graph.json      # happens-before audit of a
///                                             # dumped step graph
///
/// Files are classified by extension (.jsonl = metrics, anything else =
/// Chrome trace) or forced with --trace / --metrics.  All of the real work
/// lives in apex/analyze.hpp (and apex/race_audit.hpp for --race-audit) so
/// the test suite drives the same code paths.
///
/// The metrics summary includes the SDC counters (sdc_audits/detected/
/// retries/rollbacks); a run whose final sdc_detected is nonzero always
/// fails a --baseline gate regardless of the threshold.

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "apex/analyze.hpp"
#include "apex/race_audit.hpp"
#include "common/error.hpp"

namespace {

void usage(std::ostream& os) {
  os << "usage: octo_analyze [options] <file>...\n"
        "  <file>                .jsonl = per-step metrics, else Chrome trace\n"
        "  --trace FILE          force FILE to be read as a Chrome trace\n"
        "  --metrics FILE        force FILE to be read as metrics JSONL\n"
        "  --baseline FILE       metrics JSONL to diff the current metrics "
        "against\n"
        "  --top N               slowest task instances to list (default 10)\n"
        "  --threshold PCT       regression threshold in percent (default "
        "5)\n"
        "  --race-audit FILE     audit a step-graph JSON (OCTO_RACE_AUDIT_DUMP"
        ") for\n"
        "                        unordered conflicting task footprints\n"
        "  --drop-edge FROM:TO   with --race-audit: ignore recorded FROM->TO\n"
        "                        class edges (missing-edge what-if)\n";
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> trace_files, metrics_files, race_files;
  std::string baseline_file;
  octo::apex::race_audit_options race_opt;
  std::size_t top_k = 10;
  double threshold_pct = 5;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "octo_analyze: " << arg << " needs an argument\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "-h" || arg == "--help") {
      usage(std::cout);
      return 0;
    } else if (arg == "--trace") {
      trace_files.push_back(next());
    } else if (arg == "--metrics") {
      metrics_files.push_back(next());
    } else if (arg == "--baseline") {
      baseline_file = next();
    } else if (arg == "--top") {
      top_k = static_cast<std::size_t>(std::strtoul(next().c_str(),
                                                    nullptr, 10));
    } else if (arg == "--threshold") {
      threshold_pct = std::strtod(next().c_str(), nullptr);
    } else if (arg == "--race-audit") {
      race_files.push_back(next());
    } else if (arg == "--drop-edge") {
      const std::string spec = next();
      const std::size_t colon = spec.find(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 == spec.size()) {
        std::cerr << "octo_analyze: --drop-edge wants FROM:TO, got '" << spec
                  << "'\n";
        return 2;
      }
      race_opt.drop_edge_from = spec.substr(0, colon);
      race_opt.drop_edge_to = spec.substr(colon + 1);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "octo_analyze: unknown option " << arg << "\n";
      usage(std::cerr);
      return 2;
    } else if (ends_with(arg, ".jsonl")) {
      metrics_files.push_back(arg);
    } else {
      trace_files.push_back(arg);
    }
  }
  if (trace_files.empty() && metrics_files.empty() && race_files.empty()) {
    usage(std::cerr);
    return 2;
  }

  try {
    bool races_found = false;
    for (const auto& f : race_files) {
      std::cout << "== race-audit: " << f << " ==\n";
      std::ifstream in(f);
      OCTO_CHECK_MSG(in.good(), "cannot open " << f);
      std::ostringstream text;
      text << in.rdbuf();
      const auto graph = octo::apex::load_graph_json(text.str());
      const auto res = octo::apex::audit_races(graph.graph, race_opt);
      std::cout << res.summary() << "\n";
      if (!res.clean()) races_found = true;
    }
    if (races_found) return 1;
    for (const auto& f : trace_files) {
      std::cout << "== trace: " << f << " ==\n";
      const auto t = octo::apex::load_chrome_trace(f);
      octo::apex::print_trace_report(std::cout, t, top_k);
    }
    for (const auto& f : metrics_files) {
      std::cout << "== metrics: " << f << " ==\n";
      const auto steps = octo::apex::load_metrics_jsonl(f);
      octo::apex::print_metrics_report(std::cout, steps);
      if (!baseline_file.empty()) {
        const auto base = octo::apex::load_metrics_jsonl(baseline_file);
        const auto regs =
            octo::apex::baseline_diff(base, steps, threshold_pct);
        octo::apex::print_baseline_diff(std::cout, regs, threshold_pct);
        if (!regs.empty()) return 1;  // regressions found: nonzero exit
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "octo_analyze: " << e.what() << "\n";
    return 2;
  }
  return 0;
}
