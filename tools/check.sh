#!/bin/sh
# Project correctness gate: octo_lint + the registry/schema sync tests,
# plus clang-tidy over src/ when available.  Run from anywhere:
#
#   tools/check.sh [BUILD_DIR]      # default build dir: ./build
#
# Exits nonzero on the first failing stage.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

if [ ! -d "$build_dir" ]; then
  echo "check.sh: build dir $build_dir missing — configure first:" >&2
  echo "  cmake -B $build_dir -S $repo_root" >&2
  exit 2
fi

echo "== octo_lint =="
cmake --build "$build_dir" --target octo_lint -- -j >/dev/null
"$build_dir/tools/octo_lint" --root "$repo_root"

echo "== registry / schema sync tests =="
cmake --build "$build_dir" --target lint_test metrics_test -- -j >/dev/null
"$build_dir/tests/lint_test" --gtest_brief=1
"$build_dir/tests/metrics_test" \
  --gtest_filter='Metrics.SchemaMatchesCsvJsonlAndDocs' --gtest_brief=1

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy (bugprone/concurrency/performance) =="
  tidy_build="$repo_root/build-tidy"
  cmake -B "$tidy_build" -S "$repo_root" -DOCTO_CLANG_TIDY=ON \
    -DOCTO_ENABLE_TESTS=OFF -DOCTO_ENABLE_BENCH=OFF \
    -DOCTO_ENABLE_EXAMPLES=OFF >/dev/null
  cmake --build "$tidy_build" -- -j
else
  echo "== clang-tidy not installed: skipped =="
fi

echo "check.sh: all stages passed"
